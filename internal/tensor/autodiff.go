package tensor

import (
	"fmt"
	"math"
)

// Tensor is a node in the reverse-mode autodiff graph. Value holds the
// forward result; grad accumulates ∂L/∂Value during Backward. Tensors that
// come from Variable participate in gradient computation; Constant tensors
// are treated as fixed inputs.
type Tensor struct {
	Value    *Matrix
	grad     *Matrix
	parents  []*Tensor
	back     func()
	requires bool
}

// Variable wraps a matrix as a trainable leaf: Backward will populate its
// gradient.
func Variable(m *Matrix) *Tensor { return &Tensor{Value: m, requires: true} }

// Constant wraps a matrix as a fixed input: no gradient flows into it.
func Constant(m *Matrix) *Tensor { return &Tensor{Value: m} }

// Grad returns the accumulated gradient for t (nil before Backward or for
// constants that no gradient reached).
func (t *Tensor) Grad() *Matrix { return t.grad }

// ZeroGrad clears the accumulated gradient so the tensor can be reused in a
// later backward pass.
func (t *Tensor) ZeroGrad() { t.grad = nil }

// Rows returns the row count of the underlying value.
func (t *Tensor) Rows() int { return t.Value.Rows }

// Cols returns the column count of the underlying value.
func (t *Tensor) Cols() int { return t.Value.Cols }

// accumulate folds g into t's gradient. It never retains g (the first
// accumulation deep-copies, later ones add element-wise), which is what lets
// every back function below route its temporaries through the scratch
// workspace and return them immediately after accumulating.
func (t *Tensor) accumulate(g *Matrix) {
	if !t.requires {
		return
	}
	if t.grad == nil {
		t.grad = g.Clone()
		return
	}
	t.grad.AddInPlace(g)
}

func newOp(value *Matrix, parents ...*Tensor) *Tensor {
	req := false
	for _, p := range parents {
		if p.requires {
			req = true
			break
		}
	}
	return &Tensor{Value: value, parents: parents, requires: req}
}

// Backward runs reverse-mode differentiation from t, which must be a 1×1
// scalar (a loss). Gradients accumulate into every reachable Variable.
func Backward(t *Tensor) {
	if t.Value.Rows != 1 || t.Value.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward on non-scalar %dx%d", t.Value.Rows, t.Value.Cols))
	}
	// Topological order via iterative post-order DFS.
	var order []*Tensor
	seen := map[*Tensor]bool{}
	type frame struct {
		n    *Tensor
		next int
	}
	stack := []frame{{n: t}}
	seen[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.n.parents) {
			p := f.n.parents[f.next]
			f.next++
			if !seen[p] {
				seen[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	t.grad = Ones(1, 1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.grad != nil && n.requires {
			n.back()
		}
	}
}

// Add returns a + b (same shapes).
func Add(a, b *Tensor) *Tensor {
	out := newOp(AddMat(a.Value, b.Value), a, b)
	out.back = func() {
		a.accumulate(out.grad)
		b.accumulate(out.grad)
	}
	return out
}

// Sub returns a - b (same shapes).
func Sub(a, b *Tensor) *Tensor {
	out := newOp(SubMat(a.Value, b.Value), a, b)
	out.back = func() {
		a.accumulate(out.grad)
		if b.requires {
			ws := defaultWorkspace
			neg := ws.GetCopy(out.grad)
			neg.ScaleInPlace(-1)
			b.accumulate(neg)
			ws.Put(neg)
		}
	}
	return out
}

// Mul returns the Hadamard (element-wise) product a ⊗ b.
func Mul(a, b *Tensor) *Tensor {
	out := newOp(HadamardMat(a.Value, b.Value), a, b)
	out.back = func() {
		ws := defaultWorkspace
		if a.requires {
			g := ws.Get(out.grad.Rows, out.grad.Cols)
			hadamardInto(g, out.grad, b.Value)
			a.accumulate(g)
			ws.Put(g)
		}
		if b.requires {
			g := ws.Get(out.grad.Rows, out.grad.Cols)
			hadamardInto(g, out.grad, a.Value)
			b.accumulate(g)
			ws.Put(g)
		}
	}
	return out
}

// hadamardInto writes a⊗b into dst; all three must share one shape.
func hadamardInto(dst, a, b *Matrix) {
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// MatMulT returns the matrix product a·b.
func MatMulT(a, b *Tensor) *Tensor {
	out := newOp(MatMul(a.Value, b.Value), a, b)
	out.back = func() {
		ws := defaultWorkspace
		if a.requires {
			bt := ws.Get(b.Value.Cols, b.Value.Rows)
			b.Value.TransposedInto(bt)
			g := ws.Get(out.grad.Rows, bt.Cols)
			MatMulInto(g, out.grad, bt)
			ws.Put(bt)
			a.accumulate(g)
			ws.Put(g)
		}
		if b.requires {
			at := ws.Get(a.Value.Cols, a.Value.Rows)
			a.Value.TransposedInto(at)
			g := ws.Get(at.Rows, out.grad.Cols)
			MatMulInto(g, at, out.grad)
			ws.Put(at)
			b.accumulate(g)
			ws.Put(g)
		}
	}
	return out
}

// Scale returns s·a for a fixed scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	v := a.Value.Clone()
	v.ScaleInPlace(s)
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.GetCopy(out.grad)
		g.ScaleInPlace(s)
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// AddScalar returns a + s applied element-wise for a fixed scalar s.
func AddScalar(a *Tensor, s float64) *Tensor {
	v := a.Value.Clone()
	for i := range v.Data {
		v.Data[i] += s
	}
	out := newOp(v, a)
	out.back = func() { a.accumulate(out.grad) }
	return out
}

// AddRowBroadcast returns a + bias where bias is a 1×Cols row vector added
// to every row of a (the standard linear-layer bias).
func AddRowBroadcast(a, bias *Tensor) *Tensor {
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast bias %dx%d for %dx%d",
			bias.Value.Rows, bias.Value.Cols, a.Value.Rows, a.Value.Cols))
	}
	v := a.Value.Clone()
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < v.Cols; j++ {
			v.Data[i*v.Cols+j] += bias.Value.Data[j]
		}
	}
	out := newOp(v, a, bias)
	out.back = func() {
		a.accumulate(out.grad)
		if bias.requires {
			ws := defaultWorkspace
			bg := ws.GetZeroed(1, a.Value.Cols)
			for i := 0; i < out.grad.Rows; i++ {
				for j := 0; j < out.grad.Cols; j++ {
					bg.Data[j] += out.grad.Data[i*out.grad.Cols+j]
				}
			}
			bias.accumulate(bg)
			ws.Put(bg)
		}
	}
	return out
}

// ReLU returns max(0, a) element-wise (the δ activation in Eq. 1).
func ReLU(a *Tensor) *Tensor {
	v := a.Value.Clone()
	for i, x := range v.Data {
		if x < 0 {
			v.Data[i] = 0
		}
	}
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.GetCopy(out.grad)
		for i, x := range a.Value.Data {
			if x <= 0 {
				g.Data[i] = 0
			}
		}
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// Sigmoid returns 1/(1+e^-a) element-wise; it produces the probability
// recommendations r̃_t and the preservation vector σ.
func Sigmoid(a *Tensor) *Tensor {
	v := a.Value.Clone()
	for i, x := range v.Data {
		v.Data[i] = 1 / (1 + math.Exp(-x))
	}
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.GetCopy(out.grad)
		for i, s := range out.Value.Data {
			g.Data[i] *= s * (1 - s)
		}
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// Tanh returns tanh(a) element-wise (used by the GRU cells of the recurrent
// baselines).
func Tanh(a *Tensor) *Tensor {
	v := a.Value.Clone()
	for i, x := range v.Data {
		v.Data[i] = math.Tanh(x)
	}
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.GetCopy(out.grad)
		for i, th := range out.Value.Data {
			g.Data[i] *= 1 - th*th
		}
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// Log returns the natural logarithm element-wise. Inputs are clamped below
// at 1e-12 so losses like -log σ(x) stay finite.
func Log(a *Tensor) *Tensor {
	const floor = 1e-12
	v := a.Value.Clone()
	for i, x := range v.Data {
		if x < floor {
			x = floor
		}
		v.Data[i] = math.Log(x)
	}
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.GetCopy(out.grad)
		for i, x := range a.Value.Data {
			if x < floor {
				x = floor
			}
			g.Data[i] /= x
		}
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// Sum reduces a to a 1×1 scalar: the terminal op of every loss.
func Sum(a *Tensor) *Tensor {
	v := NewMatrix(1, 1)
	v.Data[0] = a.Value.Sum()
	out := newOp(v, a)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.Get(a.Value.Rows, a.Value.Cols)
		for i := range g.Data {
			g.Data[i] = out.grad.Data[0]
		}
		a.accumulate(g)
		ws.Put(g)
	}
	return out
}

// Mean reduces a to its scalar average.
func Mean(a *Tensor) *Tensor {
	return Scale(Sum(a), 1/float64(len(a.Value.Data)))
}

// Concat concatenates tensors column-wise: [a ‖ b ‖ …], all with equal row
// counts. It is how MIA assembles [x̂_t ‖ Δ_t ‖ h_{t-1} ‖ r_{t-1}] for LWP.
func Concat(ts ...*Tensor) *Tensor {
	ms := make([]*Matrix, len(ts))
	for i, t := range ts {
		ms[i] = t.Value
	}
	out := newOp(ConcatCols(ms...), ts...)
	out.back = func() {
		ws := defaultWorkspace
		off := 0
		cols := out.Value.Cols
		for _, t := range ts {
			if !t.requires {
				off += t.Value.Cols
				continue
			}
			g := ws.Get(t.Value.Rows, t.Value.Cols)
			for i := 0; i < t.Value.Rows; i++ {
				copy(g.Data[i*t.Value.Cols:(i+1)*t.Value.Cols],
					out.grad.Data[i*cols+off:i*cols+off+t.Value.Cols])
			}
			t.accumulate(g)
			ws.Put(g)
			off += t.Value.Cols
		}
	}
	return out
}

// Detach returns a constant tensor sharing a's current value but cutting the
// gradient flow. POSHGNN uses it for truncated BPTT on r_{t-1} and h_{t-1}
// when configured.
func Detach(a *Tensor) *Tensor { return Constant(a.Value.Clone()) }

// QuadraticForm returns the scalar rᵀ·A·r for a column vector tensor r and a
// constant adjacency matrix A: the occlusion penalty of the POSHGNN loss.
func QuadraticForm(r *Tensor, a *Matrix) *Tensor {
	if r.Value.Cols != 1 || a.Rows != a.Cols || a.Rows != r.Value.Rows {
		panic(fmt.Sprintf("tensor: QuadraticForm r %dx%d, A %dx%d",
			r.Value.Rows, r.Value.Cols, a.Rows, a.Cols))
	}
	ar := MatMul(a, r.Value) // |V|×1, captured by the backward closure
	v := NewMatrix(1, 1)
	for i := 0; i < r.Value.Rows; i++ {
		v.Data[0] += r.Value.Data[i] * ar.Data[i]
	}
	out := newOp(v, r)
	out.back = func() {
		// ∂(rᵀAr)/∂r = (A + Aᵀ)·r
		ws := defaultWorkspace
		at := ws.Get(a.Cols, a.Rows)
		a.TransposedInto(at)
		atr := ws.Get(at.Rows, 1)
		MatMulInto(atr, at, r.Value)
		ws.Put(at)
		g := ws.Get(r.Value.Rows, 1)
		for i := range g.Data {
			g.Data[i] = (ar.Data[i] + atr.Data[i]) * out.grad.Data[0]
		}
		ws.Put(atr)
		r.accumulate(g)
		ws.Put(g)
	}
	return out
}
