package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes the finite-difference gradient of f with respect to
// the entries of m, where f rebuilds and evaluates the scalar loss from the
// current contents of m.
func numericalGrad(m *Matrix, f func() float64) *Matrix {
	const h = 1e-6
	g := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		orig := m.Data[i]
		m.Data[i] = orig + h
		fp := f()
		m.Data[i] = orig - h
		fm := f()
		m.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

func checkGrad(t *testing.T, name string, analytic, numeric *Matrix) {
	t.Helper()
	if analytic == nil {
		t.Fatalf("%s: analytic gradient is nil", name)
	}
	for i := range numeric.Data {
		diff := math.Abs(analytic.Data[i] - numeric.Data[i])
		scale := 1 + math.Abs(numeric.Data[i])
		if diff/scale > 1e-4 {
			t.Fatalf("%s: grad[%d] analytic=%v numeric=%v", name, i, analytic.Data[i], numeric.Data[i])
		}
	}
}

func TestGradMatMulSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 3, 4, 1)
	b := Randn(rng, 4, 2, 1)
	ta, tb := Variable(a), Variable(b)
	loss := Sum(MatMulT(ta, tb))
	Backward(loss)
	f := func() float64 { return MatMul(a, b).Sum() }
	checkGrad(t, "matmul/a", ta.Grad(), numericalGrad(a, f))
	checkGrad(t, "matmul/b", tb.Grad(), numericalGrad(b, f))
}

func TestGradSigmoidChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 4, 3, 1)
	ta := Variable(a)
	loss := Sum(Sigmoid(ta))
	Backward(loss)
	f := func() float64 {
		s := 0.0
		for _, v := range a.Data {
			s += 1 / (1 + math.Exp(-v))
		}
		return s
	}
	checkGrad(t, "sigmoid", ta.Grad(), numericalGrad(a, f))
}

func TestGradReLU(t *testing.T) {
	a := FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	ta := Variable(a)
	Backward(Sum(ReLU(ta)))
	want := []float64{0, 0, 1, 1}
	for i, w := range want {
		if ta.Grad().Data[i] != w {
			t.Errorf("relu grad[%d] = %v, want %v", i, ta.Grad().Data[i], w)
		}
	}
}

func TestGradTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 2, 5, 1)
	ta := Variable(a)
	Backward(Sum(Tanh(ta)))
	f := func() float64 {
		s := 0.0
		for _, v := range a.Data {
			s += math.Tanh(v)
		}
		return s
	}
	checkGrad(t, "tanh", ta.Grad(), numericalGrad(a, f))
}

func TestGradHadamardAndAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 3, 3, 1)
	b := Randn(rng, 3, 3, 1)
	ta, tb := Variable(a), Variable(b)
	loss := Sum(Mul(Add(ta, tb), ta)) // sum((a+b)⊙a)
	Backward(loss)
	f := func() float64 {
		s := 0.0
		for i := range a.Data {
			s += (a.Data[i] + b.Data[i]) * a.Data[i]
		}
		return s
	}
	checkGrad(t, "hadamard/a", ta.Grad(), numericalGrad(a, f))
	checkGrad(t, "hadamard/b", tb.Grad(), numericalGrad(b, f))
}

func TestGradSub(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 2, 2, 1)
	b := Randn(rng, 2, 2, 1)
	ta, tb := Variable(a), Variable(b)
	Backward(Sum(Mul(Sub(ta, tb), Sub(ta, tb)))) // sum((a-b)²)
	f := func() float64 {
		s := 0.0
		for i := range a.Data {
			d := a.Data[i] - b.Data[i]
			s += d * d
		}
		return s
	}
	checkGrad(t, "sub/a", ta.Grad(), numericalGrad(a, f))
	checkGrad(t, "sub/b", tb.Grad(), numericalGrad(b, f))
}

func TestGradRowBroadcastBias(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 4, 3, 1)
	bias := Randn(rng, 1, 3, 1)
	tx, tbias := Variable(x), Variable(bias)
	Backward(Sum(Sigmoid(AddRowBroadcast(tx, tbias))))
	f := func() float64 {
		s := 0.0
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				s += 1 / (1 + math.Exp(-(x.At(i, j) + bias.Data[j])))
			}
		}
		return s
	}
	checkGrad(t, "bias/x", tx.Grad(), numericalGrad(x, f))
	checkGrad(t, "bias/b", tbias.Grad(), numericalGrad(bias, f))
}

func TestGradConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 3, 2, 1)
	b := Randn(rng, 3, 1, 1)
	w := Randn(rng, 3, 1, 1)
	ta, tb := Variable(a), Variable(b)
	// loss = sum((concat(a,b)·w_fixed)²) exercises column routing in backward.
	cat := Concat(ta, tb)
	prod := MatMulT(cat, Constant(w))
	Backward(Sum(Mul(prod, prod)))
	f := func() float64 {
		s := 0.0
		for i := 0; i < 3; i++ {
			row := a.At(i, 0)*w.Data[0] + a.At(i, 1)*w.Data[1] + b.At(i, 0)*w.Data[2]
			s += row * row
		}
		return s
	}
	checkGrad(t, "concat/a", ta.Grad(), numericalGrad(a, f))
	checkGrad(t, "concat/b", tb.Grad(), numericalGrad(b, f))
}

func TestGradQuadraticForm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := Randn(rng, 5, 1, 1)
	adj := Randn(rng, 5, 5, 1)
	tr := Variable(r)
	Backward(QuadraticForm(tr, adj))
	f := func() float64 {
		ar := MatMul(adj, r)
		s := 0.0
		for i := 0; i < 5; i++ {
			s += r.Data[i] * ar.Data[i]
		}
		return s
	}
	checkGrad(t, "quadform", tr.Grad(), numericalGrad(r, f))
}

func TestGradAccumulatesOverReuse(t *testing.T) {
	// y = sum(a) + sum(a) should give gradient 2 everywhere.
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	ta := Variable(a)
	Backward(Add(Sum(ta), Sum(ta)))
	for i, g := range ta.Grad().Data {
		if g != 2 {
			t.Fatalf("grad[%d] = %v, want 2", i, g)
		}
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	a := Constant(Ones(2, 2))
	b := Variable(Ones(2, 2))
	Backward(Sum(Mul(a, b)))
	if a.Grad() != nil {
		t.Error("constant accumulated a gradient")
	}
	if b.Grad() == nil {
		t.Error("variable missing gradient")
	}
}

func TestZeroGradResets(t *testing.T) {
	a := Variable(Ones(1, 3))
	Backward(Sum(a))
	if a.Grad() == nil {
		t.Fatal("no grad")
	}
	a.ZeroGrad()
	if a.Grad() != nil {
		t.Error("ZeroGrad did not clear")
	}
	Backward(Sum(Scale(a, 3)))
	for _, g := range a.Grad().Data {
		if g != 3 {
			t.Fatalf("stale gradient after reset: %v", g)
		}
	}
}

func TestDetachStopsGradient(t *testing.T) {
	a := Variable(Ones(2, 1))
	d := Detach(Scale(a, 2))
	b := Variable(Ones(2, 1))
	Backward(Sum(Mul(d, b)))
	if a.Grad() != nil {
		t.Error("gradient leaked through Detach")
	}
	if b.Grad() == nil {
		t.Error("variable after detach missing gradient")
	}
}

func TestMeanGrad(t *testing.T) {
	a := Variable(Ones(2, 3))
	Backward(Mean(a))
	for _, g := range a.Grad().Data {
		if math.Abs(g-1.0/6.0) > 1e-12 {
			t.Fatalf("mean grad = %v", g)
		}
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Backward(Variable(Ones(2, 2)))
}

func TestDeepChainStability(t *testing.T) {
	// A deep diamond-shaped graph must not blow the stack or double-count.
	rng := rand.New(rand.NewSource(9))
	a := Variable(Randn(rng, 4, 4, 0.1))
	x := a
	for i := 0; i < 200; i++ {
		x = Add(Scale(x, 0.5), Scale(x, 0.5)) // identity, reusing x twice
	}
	Backward(Sum(x))
	for _, g := range a.Grad().Data {
		if math.Abs(g-1) > 1e-9 {
			t.Fatalf("deep chain grad = %v, want 1", g)
		}
	}
}
