package tensor

import (
	"fmt"

	"after/internal/parallel"
)

// Batched (multi-target) kernels: the wide-RHS variants of SpMMInto and
// MatMulInto behind `core.BatchSession`. K targets of one room are stacked
// target-major into a single N×(K·d) matrix — column block k holds target
// k's d feature columns — so one kernel invocation carries the whole batch
// and the weight matrix streams through the cache once instead of K times.
//
// Occlusion graphs are per-target (arcs are cast from the target's eye), so
// the batched SpMM applies a distinct CSR to each column block; passing the
// same *CSR for every block degenerates to the classic shared-graph wide-RHS
// SpMM. Per column block the accumulation order is exactly SpMMInto's /
// MatMulInto's, which is what makes the batched forward pass bit-identical
// to the sequential one (pinned in internal/core's batch property tests).

// SpMMBatchInto computes, for each block b, graphs[b]·x[:, b·d:(b+1)·d] into
// the same column block of dst, where d = x.Cols/len(graphs). Every graph
// must be square with x.Rows rows. dst is fully overwritten. Rows are
// processed in contiguous blocks over the worker pool when the total
// multiply-add work clears spmmParallelCutoff; each block owns disjoint dst
// rows, so the result is bit-identical for every worker count.
func SpMMBatchInto(dst *Matrix, graphs []*CSR, x *Matrix) {
	nb := len(graphs)
	if nb == 0 || x.Cols%nb != 0 {
		panic(fmt.Sprintf("tensor: SpMMBatchInto %d blocks over %d columns", nb, x.Cols))
	}
	d := x.Cols / nb
	work := 0
	for _, g := range graphs {
		if g.Rows != x.Rows || g.Cols != x.Rows {
			panic(fmt.Sprintf("tensor: SpMMBatchInto graph %dx%d for %d-row batch", g.Rows, g.Cols, x.Rows))
		}
		work += g.NNZ() * d
	}
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: SpMMBatchInto dst %dx%d for %dx%d result", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	// Block-outer, row-inner: processing one graph's column block across all
	// rows before moving to the next keeps that block's gathered x rows (a
	// ~d·8·rows byte footprint) cache-resident, where a row-outer loop cycles
	// the entire wide matrix once per row. Blocks write disjoint dst columns
	// and each output element still accumulates its neighbors in ascending
	// order, so the interchange is invisible in the bits.
	rowRange := func(lo, hi int) {
		for b, g := range graphs {
			off := b * d
			if g.Val == nil {
				// Implicit-ones adjacency — the occlusion hot path. The width
				// specializations accumulate each output column in register,
				// in the same ascending-neighbor order as the generic loop,
				// so results stay bit-identical; they also write (not add
				// into) the output, making a zero pass redundant. On CPUs
				// with AVX2 the vector kernels take over — still one
				// ascending-order accumulator chain per column, so still
				// bit-identical (see batch_asm_amd64.go).
				switch {
				case useAVX2 && d == 4:
					spmmCSROnes4F64AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case useAVX2 && d == 8:
					spmmCSROnes8F64AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case useAVX2 && d == 16:
					spmmCSROnes16F64AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case d == 4:
					for i := lo; i < hi; i++ {
						spmmRowOnes4(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				case d == 8:
					for i := lo; i < hi; i++ {
						spmmRowOnes8(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				case d == 16:
					for i := lo; i < hi; i++ {
						spmmRowOnes16(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				default:
					for i := lo; i < hi; i++ {
						ob := dst.Data[i*x.Cols+off:][:d]
						for j := range ob {
							ob[j] = 0
						}
						for _, c := range g.Col[g.RowPtr[i]:g.RowPtr[i+1]] {
							xb := x.Data[int(c)*x.Cols+off:][:d]
							for j, xv := range xb {
								ob[j] += xv
							}
						}
					}
				}
				continue
			}
			for i := lo; i < hi; i++ {
				ob := dst.Data[i*x.Cols+off:][:d]
				for j := range ob {
					ob[j] = 0
				}
				for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
					v := g.at(k)
					if v == 0 {
						continue
					}
					xb := x.Data[int(g.Col[k])*x.Cols+off:][:d]
					if v == 1 {
						for j, xv := range xb {
							ob[j] += xv
						}
						continue
					}
					for j, xv := range xb {
						ob[j] += v * xv
					}
				}
			}
		}
	}
	if workers := parallel.Limit(); workers > 1 && work >= spmmParallelCutoff && x.Rows > 1 {
		if workers > x.Rows {
			workers = x.Rows
		}
		chunk := (x.Rows + workers - 1) / workers
		blocks := (x.Rows + chunk - 1) / chunk
		parallel.ForEachN(blocks, workers, func(b int) {
			lo := b * chunk
			hi := lo + chunk
			if hi > x.Rows {
				hi = x.Rows
			}
			rowRange(lo, hi)
		})
		return
	}
	rowRange(0, x.Rows)
}

// matMulBlocksParallelCutoff is the multiply-add count above which
// MatMulBlocksInto fans rows out over the worker pool. Same rationale as
// spmmParallelCutoff: the POSHGNN projections are tiny (din, dout ≤ 16), so
// only genuinely wide batches on big rooms clear it.
const matMulBlocksParallelCutoff = 1 << 18

// MatMulBlocksInto applies one shared weight matrix w (din×dout) to every
// column block of the target-major batch x (rows×(K·din)), writing the
// rows×(K·dout) result into dst. Per block this replicates MatMulInto's ikj
// loop order — including the mv==0 row skip — so each column block of the
// result is bit-identical to MatMulInto on that block alone.
func MatMulBlocksInto(dst, x, w *Matrix, blocks int) {
	din, dout := w.Rows, w.Cols
	if blocks <= 0 || x.Cols != blocks*din {
		panic(fmt.Sprintf("tensor: MatMulBlocksInto %d blocks of %d over %d columns", blocks, din, x.Cols))
	}
	if dst.Rows != x.Rows || dst.Cols != blocks*dout {
		panic(fmt.Sprintf("tensor: MatMulBlocksInto dst %dx%d for %dx%d result", dst.Rows, dst.Cols, x.Rows, blocks*dout))
	}
	rowRange := func(lo, hi int) {
		// The AVX2 dout=8 kernel multiplies and adds with the scalar path's
		// per-column rounding and order (no FMA), so it stays bit-identical;
		// the dout=1 head keeps the scalar kernel — its single accumulator
		// chain cannot vectorize without reassociating, and in float64 the
		// order is contractual.
		if useAVX2 && dout == 8 && hi > lo {
			matMulBlocksF64AVX2(dst.Data[lo*dst.Cols:], x.Data[lo*x.Cols:], w.Data, hi-lo, blocks, din, x.Cols, dst.Cols)
			return
		}
		for i := lo; i < hi; i++ {
			xRow := x.Data[i*x.Cols : (i+1)*x.Cols]
			outRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			switch dout {
			// Register-accumulator specializations for the POSHGNN widths
			// (hidden=8 and the scalar heads). Accumulation runs in the same
			// ascending-k order with the same mv==0 skip as the generic loop,
			// so outputs are bit-identical; keeping the partial sums out of
			// memory roughly doubles throughput.
			case 8:
				for b := 0; b < blocks; b++ {
					matMulRow8(outRow[b*8:(b+1)*8], xRow[b*din:(b+1)*din], w.Data)
				}
			case 1:
				for b := 0; b < blocks; b++ {
					outRow[b] = matMulRow1(xRow[b*din:(b+1)*din], w.Data)
				}
			default:
				for j := range outRow {
					outRow[j] = 0
				}
				for b := 0; b < blocks; b++ {
					xb := xRow[b*din : (b+1)*din]
					ob := outRow[b*dout : (b+1)*dout]
					for k, mv := range xb {
						if mv == 0 {
							continue
						}
						wRow := w.Data[k*dout : (k+1)*dout]
						for j, wv := range wRow {
							ob[j] += mv * wv
						}
					}
				}
			}
		}
	}
	work := x.Rows * x.Cols * dout
	if workers := parallel.Limit(); workers > 1 && work >= matMulBlocksParallelCutoff && x.Rows > 1 {
		if workers > x.Rows {
			workers = x.Rows
		}
		chunk := (x.Rows + workers - 1) / workers
		nblk := (x.Rows + chunk - 1) / chunk
		parallel.ForEachN(nblk, workers, func(b int) {
			lo := b * chunk
			hi := lo + chunk
			if hi > x.Rows {
				hi = x.Rows
			}
			rowRange(lo, hi)
		})
		return
	}
	rowRange(0, x.Rows)
}

// spmmRowOnes4/8/16 accumulate Σ_{c∈cols} x[c, off:off+d] into ob for an
// implicit-ones CSR row, holding every partial sum in a register. stride is
// x's row stride (total batch width). Neighbor order — and therefore
// floating-point accumulation order — matches the generic loop exactly.
func spmmRowOnes4(ob []float64, cols []int32, x []float64, stride, off int) {
	var a0, a1, a2, a3 float64
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:4:4]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
}

func spmmRowOnes8(ob []float64, cols []int32, x []float64, stride, off int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:8:8]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
		a4 += xb[4]
		a5 += xb[5]
		a6 += xb[6]
		a7 += xb[7]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
}

func spmmRowOnes16(ob []float64, cols []int32, x []float64, stride, off int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	var a8, a9, a10, a11, a12, a13, a14, a15 float64
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:16:16]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
		a4 += xb[4]
		a5 += xb[5]
		a6 += xb[6]
		a7 += xb[7]
		a8 += xb[8]
		a9 += xb[9]
		a10 += xb[10]
		a11 += xb[11]
		a12 += xb[12]
		a13 += xb[13]
		a14 += xb[14]
		a15 += xb[15]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
	ob[8], ob[9], ob[10], ob[11] = a8, a9, a10, a11
	ob[12], ob[13], ob[14], ob[15] = a12, a13, a14, a15
}

// matMulRow8 computes ob = xb·w for one row block with dout=8, partial sums
// in registers, k ascending with the mv==0 skip — bit-identical to the
// generic path.
func matMulRow8(ob []float64, xb []float64, w []float64) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	for k, mv := range xb {
		if mv == 0 {
			continue
		}
		wr := w[k*8:]
		wr = wr[:8:8]
		a0 += mv * wr[0]
		a1 += mv * wr[1]
		a2 += mv * wr[2]
		a3 += mv * wr[3]
		a4 += mv * wr[4]
		a5 += mv * wr[5]
		a6 += mv * wr[6]
		a7 += mv * wr[7]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
}

// matMulRow1 is the dout=1 head: a plain register dot product with the same
// skip and order.
func matMulRow1(xb []float64, w []float64) float64 {
	var acc float64
	for k, mv := range xb {
		if mv == 0 {
			continue
		}
		acc += mv * w[k]
	}
	return acc
}

// AddReLUInto fuses the convolution epilogue dst[i] = max(dst[i]+a[i], 0)
// over whole backing slices. The AVX2 path keeps the scalar branch's exact
// semantics — negatives clamp to +0, while −0 and NaN sums pass through — so
// it is bit-identical to the portable loop.
func AddReLUInto(dst, a []float64) {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: AddReLUInto %d vs %d elements", len(dst), len(a)))
	}
	if useAVX2 {
		addReLUInto64AVX2(dst, a)
		return
	}
	for i, v := range a {
		s := dst[i] + v
		if s < 0 {
			s = 0
		}
		dst[i] = s
	}
}
