// AVX2 kernels for the batched inference path. See batch_asm_amd64.go for
// the numeric contracts (float64: bit-identical to the Go kernels; float32:
// FMA within the tolerance contract).

#include "textflag.h"

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func matMulBlocksF64AVX2(dst, x, w []float64, rows, blocks, din, xStride, dstStride int)
//
// dst[i, b*8:(b+1)*8] = x[i, b*din:(b+1)*din] · w  for every row i and block
// b, with w din×8 row-major. Rows are processed in pairs sharing the weight
// loads; each output column accumulates round(mul)+round(add) in ascending-k
// order, exactly like the scalar kernel.
TEXT ·matMulBlocksF64AVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), R14
	MOVQ x_base+24(FP), R13
	MOVQ w_base+48(FP), R12
	MOVQ rows+72(FP), R15
	MOVQ din+88(FP), BX
	MOVQ xStride+96(FP), R10
	SHLQ $3, R10
	MOVQ dstStride+104(FP), R11
	SHLQ $3, R11

pair64:
	CMPQ R15, $2
	JLT  tail64
	MOVQ R13, SI
	MOVQ R14, DI
	MOVQ blocks+80(FP), CX

blk64x2:
	MOVQ   R12, R8
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	MOVQ   BX, R9

k64x2:
	VBROADCASTSD (SI), Y2
	VBROADCASTSD (SI)(R10*1), Y5
	VMOVUPD      (R8), Y6
	VMOVUPD      32(R8), Y7
	VMULPD       Y6, Y2, Y3
	VADDPD       Y3, Y0, Y0
	VMULPD       Y7, Y2, Y4
	VADDPD       Y4, Y1, Y1
	VMULPD       Y6, Y5, Y3
	VADDPD       Y3, Y8, Y8
	VMULPD       Y7, Y5, Y4
	VADDPD       Y4, Y9, Y9
	ADDQ         $8, SI
	ADDQ         $64, R8
	DECQ         R9
	JNE          k64x2

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y8, (DI)(R11*1)
	VMOVUPD Y9, 32(DI)(R11*1)
	ADDQ    $64, DI
	DECQ    CX
	JNE     blk64x2

	LEAQ (R13)(R10*2), R13
	LEAQ (R14)(R11*2), R14
	SUBQ $2, R15
	JMP  pair64

tail64:
	TESTQ R15, R15
	JE    done64
	MOVQ  R13, SI
	MOVQ  R14, DI
	MOVQ  blocks+80(FP), CX

blk64x1:
	MOVQ   R12, R8
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   BX, R9

k64x1:
	VBROADCASTSD (SI), Y2
	VMULPD       (R8), Y2, Y3
	VADDPD       Y3, Y0, Y0
	VMULPD       32(R8), Y2, Y4
	VADDPD       Y4, Y1, Y1
	ADDQ         $8, SI
	ADDQ         $64, R8
	DECQ         R9
	JNE          k64x1

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, DI
	DECQ    CX
	JNE     blk64x1

done64:
	VZEROUPPER
	RET

// func matMulBlocksF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int)
//
// Float32 counterpart with dout=8 and fused multiply-adds; rows go four at a
// time (four independent FMA chains saturate the FMA units), remainder rows
// one at a time — per row the result is identical either way.
TEXT ·matMulBlocksF32AVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), R14
	MOVQ x_base+24(FP), R13
	MOVQ w_base+48(FP), R12
	MOVQ rows+72(FP), R15
	MOVQ din+88(FP), BX
	MOVQ xStride+96(FP), R10
	SHLQ $2, R10
	MOVQ dstStride+104(FP), R11
	SHLQ $2, R11
	LEAQ (R10)(R10*2), AX
	LEAQ (R11)(R11*2), DX

quad32:
	CMPQ R15, $4
	JLT  tail32
	MOVQ R13, SI
	MOVQ R14, DI
	MOVQ blocks+80(FP), CX

blk32x4:
	MOVQ   R12, R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y8, Y8, Y8
	MOVQ   BX, R9

k32x4:
	VMOVUPS      (R8), Y3
	VBROADCASTSS (SI), Y4
	VBROADCASTSS (SI)(R10*1), Y5
	VBROADCASTSS (SI)(R10*2), Y6
	VBROADCASTSS (SI)(AX*1), Y7
	VFMADD231PS  Y3, Y4, Y0
	VFMADD231PS  Y3, Y5, Y1
	VFMADD231PS  Y3, Y6, Y2
	VFMADD231PS  Y3, Y7, Y8
	ADDQ         $4, SI
	ADDQ         $32, R8
	DECQ         R9
	JNE          k32x4

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(R11*1)
	VMOVUPS Y2, (DI)(R11*2)
	VMOVUPS Y8, (DI)(DX*1)
	ADDQ    $32, DI
	DECQ    CX
	JNE     blk32x4

	LEAQ (R13)(R10*4), R13
	LEAQ (R14)(R11*4), R14
	SUBQ $4, R15
	JMP  quad32

tail32:
	TESTQ R15, R15
	JE    done32
	MOVQ  R13, SI
	MOVQ  R14, DI
	MOVQ  blocks+80(FP), CX

blk32x1:
	MOVQ   R12, R8
	VXORPS Y0, Y0, Y0
	MOVQ   BX, R9

k32x1:
	VBROADCASTSS (SI), Y4
	VFMADD231PS  (R8), Y4, Y0
	ADDQ         $4, SI
	ADDQ         $32, R8
	DECQ         R9
	JNE          k32x1

	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	DECQ    CX
	JNE     blk32x1

	ADDQ R10, R13
	ADDQ R11, R14
	DECQ R15
	JMP  tail32

done32:
	VZEROUPPER
	RET

// func matMulHeadF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int)
//
// dout=1 head: dst[i, b] = x[i, b*din:(b+1)*din] · w with w a din-vector and
// din a multiple of 8. Vector FMA over 8-lane chunks, horizontal sum at the
// end — float32 tolerance contract only.
TEXT ·matMulHeadF32AVX2(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), R14
	MOVQ x_base+24(FP), R13
	MOVQ w_base+48(FP), R12
	MOVQ rows+72(FP), R15
	MOVQ din+88(FP), BX
	SHRQ $3, BX
	MOVQ xStride+96(FP), R10
	SHLQ $2, R10
	MOVQ dstStride+104(FP), R11
	SHLQ $2, R11

rowH:
	TESTQ R15, R15
	JE    doneH
	MOVQ  R13, SI
	MOVQ  R14, DI
	MOVQ  blocks+80(FP), CX

blkH:
	MOVQ   R12, R8
	VXORPS Y0, Y0, Y0
	MOVQ   BX, R9

chunkH:
	VMOVUPS     (SI), Y1
	VFMADD231PS (R8), Y1, Y0
	ADDQ        $32, SI
	ADDQ        $32, R8
	DECQ        R9
	JNE         chunkH

	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, (DI)
	ADDQ         $4, DI
	DECQ         CX
	JNE          blkH

	ADDQ R10, R13
	ADDQ R11, R14
	DECQ R15
	JMP  rowH

doneH:
	VZEROUPPER
	RET

// spmmCSROnes*AVX2: full implicit-ones CSR pass — for each of rows rows r,
// dst[r*stride : +d] = Σ_{c∈cols[rowptr[r]:rowptr[r+1]]} x[c*stride+off : +d].
// The row loop lives in the kernel so the per-row call/dispatch overhead of
// the old single-row variants is gone; within a row, neighbors accumulate in
// slice order (ascending) with one vector accumulator chain per column
// group — the same per-column accumulation order as the scalar kernels, so
// the float64 versions stay bit-identical.

// func spmmCSROnes4F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)
TEXT ·spmmCSROnes4F64AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*8), DX
	MOVQ    R8, R12
	SHLQ    $3, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done4F64

row4F64:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPD  Y0, Y0, Y0
	TESTQ   CX, CX
	JE      store4F64

n4F64:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPD  (DX)(AX*8), Y0, Y0
	ADDQ    $4, SI
	DECQ    CX
	JNE     n4F64

store4F64:
	VMOVUPD Y0, (DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row4F64

done4F64:
	VZEROUPPER
	RET

// func spmmCSROnes8F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)
TEXT ·spmmCSROnes8F64AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*8), DX
	MOVQ    R8, R12
	SHLQ    $3, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done8F64

row8F64:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPD  Y0, Y0, Y0
	VXORPD  Y1, Y1, Y1
	TESTQ   CX, CX
	JE      store8F64

n8F64:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPD  (DX)(AX*8), Y0, Y0
	VADDPD  32(DX)(AX*8), Y1, Y1
	ADDQ    $4, SI
	DECQ    CX
	JNE     n8F64

store8F64:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row8F64

done8F64:
	VZEROUPPER
	RET

// func spmmCSROnes16F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)
TEXT ·spmmCSROnes16F64AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*8), DX
	MOVQ    R8, R12
	SHLQ    $3, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done16F64

row16F64:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPD  Y0, Y0, Y0
	VXORPD  Y1, Y1, Y1
	VXORPD  Y2, Y2, Y2
	VXORPD  Y3, Y3, Y3
	TESTQ   CX, CX
	JE      store16F64

n16F64:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPD  (DX)(AX*8), Y0, Y0
	VADDPD  32(DX)(AX*8), Y1, Y1
	VADDPD  64(DX)(AX*8), Y2, Y2
	VADDPD  96(DX)(AX*8), Y3, Y3
	ADDQ    $4, SI
	DECQ    CX
	JNE     n16F64

store16F64:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row16F64

done16F64:
	VZEROUPPER
	RET

// func spmmCSROnes4F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)
TEXT ·spmmCSROnes4F32AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*4), DX
	MOVQ    R8, R12
	SHLQ    $2, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done4F32

row4F32:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPS  X0, X0, X0
	TESTQ   CX, CX
	JE      store4F32

n4F32:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPS  (DX)(AX*4), X0, X0
	ADDQ    $4, SI
	DECQ    CX
	JNE     n4F32

store4F32:
	VMOVUPS X0, (DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row4F32

done4F32:
	VZEROUPPER
	RET

// func spmmCSROnes8F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)
TEXT ·spmmCSROnes8F32AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*4), DX
	MOVQ    R8, R12
	SHLQ    $2, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done8F32

row8F32:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPS  Y0, Y0, Y0
	TESTQ   CX, CX
	JE      store8F32

n8F32:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPS  (DX)(AX*4), Y0, Y0
	ADDQ    $4, SI
	DECQ    CX
	JNE     n8F32

store8F32:
	VMOVUPS Y0, (DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row8F32

done8F32:
	VZEROUPPER
	RET

// func spmmCSROnes16F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)
TEXT ·spmmCSROnes16F32AVX2(SB), NOSPLIT, $0-120
	MOVQ    dst_base+0(FP), DI
	MOVQ    rowptr_base+24(FP), R15
	MOVQ    cols_base+48(FP), R9
	MOVQ    x_base+72(FP), DX
	MOVQ    rows+96(FP), R14
	MOVQ    stride+104(FP), R8
	MOVQ    off+112(FP), AX
	LEAQ    (DX)(AX*4), DX
	MOVQ    R8, R12
	SHLQ    $2, R12
	MOVLQSX (R15), R10
	TESTQ   R14, R14
	JE      done16F32

row16F32:
	MOVLQSX 4(R15), R11
	ADDQ    $4, R15
	MOVQ    R11, CX
	SUBQ    R10, CX
	LEAQ    (R9)(R10*4), SI
	MOVQ    R11, R10
	VXORPS  Y0, Y0, Y0
	VXORPS  Y1, Y1, Y1
	TESTQ   CX, CX
	JE      store16F32

n16F32:
	MOVLQSX (SI), AX
	IMULQ   R8, AX
	VADDPS  (DX)(AX*4), Y0, Y0
	VADDPS  32(DX)(AX*4), Y1, Y1
	ADDQ    $4, SI
	DECQ    CX
	JNE     n16F32

store16F32:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    R12, DI
	DECQ    R14
	JNE     row16F32

done16F32:
	VZEROUPPER
	RET

// addReLUInto*AVX2: dst[i] = max(dst[i]+a[i], 0). VMAXPD/VMAXPS with the sum
// as the second source returns the sum on ±0 ties and NaN — exactly the
// scalar `if s < 0 { s = 0 }` branch — so the float64 version is
// bit-identical to the portable loop.

// func addReLUInto64AVX2(dst, a []float64)
TEXT ·addReLUInto64AVX2(SB), NOSPLIT, $0-48
	MOVQ   dst_base+0(FP), DI
	MOVQ   dst_len+8(FP), CX
	MOVQ   a_base+24(FP), SI
	VXORPD Y15, Y15, Y15
	MOVQ   CX, BX
	SHRQ   $2, BX
	TESTQ  BX, BX
	JE     tailReLU64

chunkReLU64:
	VMOVUPD (DI), Y0
	VADDPD  (SI), Y0, Y0
	VMAXPD  Y0, Y15, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    BX
	JNE     chunkReLU64

tailReLU64:
	ANDQ $3, CX
	JE   doneReLU64

tReLU64:
	VMOVSD (DI), X0
	VADDSD (SI), X0, X0
	VMAXSD X0, X15, X0
	VMOVSD X0, (DI)
	ADDQ   $8, DI
	ADDQ   $8, SI
	DECQ   CX
	JNE    tReLU64

doneReLU64:
	VZEROUPPER
	RET

// func addReLUInto32AVX2(dst, a []float32)
TEXT ·addReLUInto32AVX2(SB), NOSPLIT, $0-48
	MOVQ   dst_base+0(FP), DI
	MOVQ   dst_len+8(FP), CX
	MOVQ   a_base+24(FP), SI
	VXORPS Y15, Y15, Y15
	MOVQ   CX, BX
	SHRQ   $3, BX
	TESTQ  BX, BX
	JE     tailReLU32

chunkReLU32:
	VMOVUPS (DI), Y0
	VADDPS  (SI), Y0, Y0
	VMAXPS  Y0, Y15, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    BX
	JNE     chunkReLU32

tailReLU32:
	ANDQ $7, CX
	JE   doneReLU32

tReLU32:
	VMOVSS (DI), X0
	VADDSS (SI), X0, X0
	VMAXSS X0, X15, X0
	VMOVSS X0, (DI)
	ADDQ   $4, DI
	ADDQ   $4, SI
	DECQ   CX
	JNE    tReLU32

doneReLU32:
	VZEROUPPER
	RET
