package tensor

// AVX2 row kernels behind the useAVX2 dispatch in SpMMBatchInto{,32} and
// MatMulBlocksInto{,32}, implemented in batch_amd64.s. Contracts mirror the
// portable Go kernels they replace:
//
//   - The float64 pair keeps multiplies and adds as separate, individually
//     rounded instructions in the exact scalar order (k ascending / neighbor
//     ascending, each output column its own accumulator chain), so their
//     results are bit-identical to the Go kernels — including the mv==0 skip,
//     which vanishes numerically because x+(±0) == x for every x reachable
//     from a +0 accumulator.
//   - The float32 set uses VFMADD (fused, one rounding per multiply-add) and
//     is held to the float32 tolerance contract instead, sitting closer to
//     the float64 oracle than the portable f32 kernels do.
//
// All of them assume blocks ≥ 1 and din ≥ 1; matMulHeadF32AVX2 additionally
// requires din%8 == 0 (checked at the dispatch site).

//go:noescape
func matMulBlocksF64AVX2(dst, x, w []float64, rows, blocks, din, xStride, dstStride int)

//go:noescape
func matMulBlocksF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int)

//go:noescape
func matMulHeadF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int)

//go:noescape
func spmmCSROnes4F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)

//go:noescape
func spmmCSROnes8F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)

//go:noescape
func spmmCSROnes16F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int)

//go:noescape
func spmmCSROnes4F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)

//go:noescape
func spmmCSROnes8F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)

//go:noescape
func spmmCSROnes16F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int)

//go:noescape
func addReLUInto64AVX2(dst, a []float64)

//go:noescape
func addReLUInto32AVX2(dst, a []float32)
