package tensor

import (
	"math"
	"math/rand"
	"testing"

	"after/internal/parallel"
)

// randomPattern builds a random n×n implicit-ones CSR with edge probability p.
func randomPattern(rng *rand.Rand, n int, p float64) *CSR {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				m.Data[i*n+j] = 1
			}
		}
	}
	c := CSRFromDense(m)
	c.Val = nil // implicit ones, like the occlusion adjacency
	return c
}

func randomDense(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestSpMMBatchIntoMatchesPerBlock pins the batched kernel to SpMMInto
// column block by column block, bit-identically, across sizes and batch
// widths including K=1 and a shared-graph (wide-RHS) batch.
func TestSpMMBatchIntoMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, k, d int }{
		{1, 1, 1}, {5, 1, 4}, {12, 3, 4}, {40, 16, 8}, {33, 7, 5},
	} {
		graphs := make([]*CSR, tc.k)
		shared := randomPattern(rng, tc.n, 0.2)
		for b := range graphs {
			if b%2 == 0 {
				graphs[b] = randomPattern(rng, tc.n, 0.15)
			} else {
				graphs[b] = shared // exercise aliased graphs in one batch
			}
		}
		x := randomDense(rng, tc.n, tc.k*tc.d)
		dst := NewMatrix(tc.n, tc.k*tc.d)
		SpMMBatchInto(dst, graphs, x)
		for b := 0; b < tc.k; b++ {
			xb := NewMatrix(tc.n, tc.d)
			for i := 0; i < tc.n; i++ {
				copy(xb.Data[i*tc.d:(i+1)*tc.d], x.Data[i*x.Cols+b*tc.d:i*x.Cols+(b+1)*tc.d])
			}
			want := SpMM(graphs[b], xb)
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.d; j++ {
					got := dst.Data[i*dst.Cols+b*tc.d+j]
					if got != want.Data[i*tc.d+j] {
						t.Fatalf("n=%d k=%d d=%d block %d (%d,%d): batched %v vs SpMM %v",
							tc.n, tc.k, tc.d, b, i, j, got, want.Data[i*tc.d+j])
					}
				}
			}
		}
	}
}

// TestMatMulBlocksIntoMatchesPerBlock pins the blocked dense projection to
// MatMulInto per column block, bit-identically.
func TestMatMulBlocksIntoMatchesPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct{ n, k, din, dout int }{
		{1, 1, 1, 1}, {6, 1, 4, 8}, {17, 5, 16, 8}, {50, 16, 8, 1},
	} {
		w := randomDense(rng, tc.din, tc.dout)
		x := randomDense(rng, tc.n, tc.k*tc.din)
		// Sprinkle exact zeros so the mv==0 skip path is exercised.
		for i := 0; i < len(x.Data); i += 3 {
			x.Data[i] = 0
		}
		dst := NewMatrix(tc.n, tc.k*tc.dout)
		MatMulBlocksInto(dst, x, w, tc.k)
		for b := 0; b < tc.k; b++ {
			xb := NewMatrix(tc.n, tc.din)
			for i := 0; i < tc.n; i++ {
				copy(xb.Data[i*tc.din:(i+1)*tc.din], x.Data[i*x.Cols+b*tc.din:i*x.Cols+(b+1)*tc.din])
			}
			want := MatMul(xb, w)
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.dout; j++ {
					got := dst.Data[i*dst.Cols+b*tc.dout+j]
					if got != want.Data[i*tc.dout+j] {
						t.Fatalf("n=%d k=%d block %d (%d,%d): blocked %v vs MatMul %v",
							tc.n, tc.k, b, i, j, got, want.Data[i*tc.dout+j])
					}
				}
			}
		}
	}
}

// TestBatchKernelsWorkerInvariant: the row-parallel split must not change a
// single bit of the result (disjoint contiguous row blocks).
func TestBatchKernelsWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, k, d := 300, 16, 8 // big enough to clear the parallel cutoffs
	graphs := make([]*CSR, k)
	for b := range graphs {
		graphs[b] = randomPattern(rng, n, 0.1)
	}
	x := randomDense(rng, n, k*d)
	w := randomDense(rng, d, d)
	run := func() (*Matrix, *Matrix) {
		sp := NewMatrix(n, k*d)
		SpMMBatchInto(sp, graphs, x)
		mm := NewMatrix(n, k*d)
		MatMulBlocksInto(mm, x, w, k)
		return sp, mm
	}
	var sp1, mm1, sp8, mm8 *Matrix
	parallel.WithLimit(1, func() { sp1, mm1 = run() })
	parallel.WithLimit(8, func() { sp8, mm8 = run() })
	for i := range sp1.Data {
		if sp1.Data[i] != sp8.Data[i] {
			t.Fatalf("SpMMBatchInto workers=1 vs 8 differ at %d: %v vs %v", i, sp1.Data[i], sp8.Data[i])
		}
	}
	for i := range mm1.Data {
		if mm1.Data[i] != mm8.Data[i] {
			t.Fatalf("MatMulBlocksInto workers=1 vs 8 differ at %d: %v vs %v", i, mm1.Data[i], mm8.Data[i])
		}
	}
}

// TestFloat32KernelsNearFloat64: the f32 kernels agree with the f64 oracles
// to single-precision relative error. These are small reductions (≤ a few
// hundred terms), so 1e-4 relative against the magnitude scale is generous
// yet would still catch any indexing or accumulation bug.
func TestFloat32KernelsNearFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, k, d := 80, 8, 8
	graphs := make([]*CSR, k)
	for b := range graphs {
		graphs[b] = randomPattern(rng, n, 0.15)
	}
	x := randomDense(rng, n, k*d)
	w := randomDense(rng, d, d)
	x32 := &Matrix32{Rows: x.Rows, Cols: x.Cols, Data: make([]float32, len(x.Data))}
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}
	w32 := ToMatrix32(w)

	sp := NewMatrix(n, k*d)
	SpMMBatchInto(sp, graphs, x)
	sp32 := NewMatrix32(n, k*d)
	SpMMBatchInto32(sp32, graphs, x32)
	mm := NewMatrix(n, k*d)
	MatMulBlocksInto(mm, x, w, k)
	mm32 := NewMatrix32(n, k*d)
	MatMulBlocksInto32(mm32, x32, w32, k)

	check := func(name string, f64 []float64, f32 []float32) {
		scale := 1.0
		for _, v := range f64 {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range f64 {
			if diff := math.Abs(f64[i] - float64(f32[i])); diff > 1e-4*scale {
				t.Fatalf("%s: f32 diverges at %d: %v vs %v (diff %v, scale %v)",
					name, i, f32[i], f64[i], diff, scale)
			}
		}
	}
	check("SpMMBatch", sp.Data, sp32.Data)
	check("MatMulBlocks", mm.Data, mm32.Data)
}

// TestBatchKernelShapePanics: malformed shapes must fail loudly.
func TestBatchKernelShapePanics(t *testing.T) {
	g := randomPattern(rand.New(rand.NewSource(1)), 4, 0.5)
	x := NewMatrix(4, 6)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("uneven blocks", func() { SpMMBatchInto(NewMatrix(4, 6), []*CSR{g, g, g, g}, x) })
	mustPanic("bad dst", func() { SpMMBatchInto(NewMatrix(3, 6), []*CSR{g, g}, x) })
	mustPanic("bad graph", func() { SpMMBatchInto(NewMatrix(5, 6), []*CSR{g, g}, NewMatrix(5, 6)) })
	mustPanic("bad width", func() { MatMulBlocksInto(NewMatrix(4, 6), x, NewMatrix(4, 3), 2) })
}
