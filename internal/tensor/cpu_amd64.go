package tensor

// CPU feature detection for the AVX2 kernel dispatch, done once at package
// init via raw CPUID (the stdlib's internal/cpu is unimportable and the repo
// takes no external dependencies). The batched kernels need AVX2 *and* FMA
// *and* OS-managed YMM state, so all three gate useAVX2 together; anything
// less falls back to the portable Go kernels, which the asm ones are
// property-tested against (float64 bit-identical, float32 within tolerance).
var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 { // XMM+YMM state enabled by the OS
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2 != 0
}

// cpuidex and xgetbv0 are implemented in batch_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
