//go:build !amd64

package tensor

// Non-amd64 builds always take the portable Go kernels. A var (not a const)
// so the dispatch tests can flip it uniformly across architectures.
var useAVX2 = false

// Stubs keep the AVX2 call sites compiling; useAVX2 == false makes them
// unreachable.
func matMulBlocksF64AVX2(dst, x, w []float64, rows, blocks, din, xStride, dstStride int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func matMulBlocksF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func matMulHeadF32AVX2(dst, x, w []float32, rows, blocks, din, xStride, dstStride int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes4F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes8F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes16F64AVX2(dst []float64, rowptr, cols []int32, x []float64, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes4F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes8F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func spmmCSROnes16F32AVX2(dst []float32, rowptr, cols []int32, x []float32, rows, stride, off int) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func addReLUInto64AVX2(dst, a []float64) {
	panic("tensor: AVX2 kernel on non-amd64")
}

func addReLUInto32AVX2(dst, a []float32) {
	panic("tensor: AVX2 kernel on non-amd64")
}
