// Package tensor implements the numerical substrate of the POSHGNN
// reproduction: dense row-major float64 matrices and a reverse-mode
// automatic-differentiation engine over them.
//
// The networks in the paper are tiny (hidden dimension 8, two to three
// layers, at most a few hundred nodes per room), so dense CPU matrices
// reproduce training faithfully without any external framework.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero rows×cols matrix. It panics on non-positive
// dimensions, which always indicates a programming error in this codebase.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix backed by a copy of data, which must
// have exactly rows*cols elements in row-major order.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m
}

// FromColumn builds a len(v)×1 column vector from v.
func FromColumn(v []float64) *Matrix { return FromSlice(len(v), 1, v) }

// Ones returns a rows×cols matrix filled with 1.
func Ones(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Randn fills a rows×cols matrix with values drawn from N(0, std²) using rng.
func Randn(rng *rand.Rand, rows, cols int, std float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// GlorotUniform fills a rows×cols matrix with the Glorot/Xavier uniform
// initialization used by the paper's GNN layers.
func GlorotUniform(rng *rand.Rand, rows, cols int) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SameShape reports whether m and n have identical dimensions.
func (m *Matrix) SameShape(n *Matrix) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

func (m *Matrix) assertSameShape(n *Matrix, op string) {
	if !m.SameShape(n) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, n.Rows, n.Cols))
	}
}

// AddInPlace adds n to m element-wise.
func (m *Matrix) AddInPlace(n *Matrix) {
	m.assertSameShape(n, "AddInPlace")
	for i, v := range n.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Zero resets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns m·n. Dimensions must agree (m.Cols == n.Rows).
func MatMul(m, n *Matrix) *Matrix {
	out := NewMatrix(m.Rows, n.Cols)
	MatMulInto(out, m, n)
	return out
}

// MatMulInto computes m·n into dst (which must be m.Rows×n.Cols and is
// zeroed first) — the allocation-free MatMul for scratch-buffer callers.
func MatMulInto(dst, m, n *Matrix) {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != n.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d for %dx%d result", dst.Rows, dst.Cols, m.Rows, n.Cols))
	}
	dst.Zero()
	// ikj loop order keeps the inner loop sequential over both n and dst.
	for i := 0; i < m.Rows; i++ {
		mRow := m.Data[i*m.Cols : (i+1)*m.Cols]
		outRow := dst.Data[i*n.Cols : (i+1)*n.Cols]
		for k, mv := range mRow {
			if mv == 0 {
				continue
			}
			nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, nv := range nRow {
				outRow[j] += mv * nv
			}
		}
	}
}

// Transposed returns a new matrix that is the transpose of m.
func (m *Matrix) Transposed() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	m.TransposedInto(t)
	return t
}

// TransposedInto writes the transpose of m into dst (m.Cols×m.Rows).
func (m *Matrix) TransposedInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: TransposedInto dst %dx%d for %dx%d", dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
}

// AddMat returns m + n as a new matrix.
func AddMat(m, n *Matrix) *Matrix {
	m.assertSameShape(n, "AddMat")
	out := m.Clone()
	out.AddInPlace(n)
	return out
}

// SubMat returns m - n as a new matrix.
func SubMat(m, n *Matrix) *Matrix {
	m.assertSameShape(n, "SubMat")
	out := m.Clone()
	for i, v := range n.Data {
		out.Data[i] -= v
	}
	return out
}

// HadamardMat returns the element-wise product m ⊗ n as a new matrix.
func HadamardMat(m, n *Matrix) *Matrix {
	m.assertSameShape(n, "HadamardMat")
	out := m.Clone()
	for i, v := range n.Data {
		out.Data[i] *= v
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value, used for gradient
// clipping and NaN guards.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Col returns a copy of column j as a plain slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Row returns a copy of row i as a plain slice.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// ConcatCols returns [a ‖ b ‖ …]: matrices stacked side by side. All inputs
// must share the same row count.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("tensor: ConcatCols needs at least one matrix")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := NewMatrix(rows, cols)
	off := 0
	for _, m := range ms {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
		}
		off += m.Cols
	}
	return out
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
