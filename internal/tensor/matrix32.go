package tensor

import (
	"fmt"
	"sync"

	"after/internal/parallel"
)

// Matrix32 is the float32 counterpart of Matrix, used only by the inference
// fast path (core.BatchSession with Float32 set): serving sessions trade the
// float64 oracle's last bits for halved memory traffic. Training, the Table
// II gate, and every default inference path stay on float64 — Matrix32 has
// no autodiff and deliberately offers only the handful of kernels the
// batched forward pass needs.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zero rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ToMatrix32 converts m by rounding every element to float32 — the one-time
// weight conversion a float32 session performs at start.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Workspace32 pools Matrix32 scratch buffers, mirroring Workspace for the
// float32 inference path. Safe for concurrent use.
type Workspace32 struct {
	pools sync.Map // element count -> *sync.Pool of *Matrix32
}

// NewWorkspace32 returns an empty float32 workspace.
func NewWorkspace32() *Workspace32 { return &Workspace32{} }

var defaultWorkspace32 = NewWorkspace32()

// Scratch32 returns the shared default float32 workspace.
func Scratch32() *Workspace32 { return defaultWorkspace32 }

func (w *Workspace32) pool(n int) *sync.Pool {
	if p, ok := w.pools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := w.pools.LoadOrStore(n, &sync.Pool{New: func() any {
		return &Matrix32{Data: make([]float32, n)}
	}})
	return p.(*sync.Pool)
}

// Get returns a rows×cols matrix with undefined contents.
func (w *Workspace32) Get(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic("tensor: Workspace32.Get with non-positive shape")
	}
	m := w.pool(rows * cols).Get().(*Matrix32)
	m.Rows, m.Cols = rows, cols
	return m
}

// Put returns m to the workspace. m must not be used afterwards.
func (w *Workspace32) Put(m *Matrix32) {
	if m == nil {
		return
	}
	w.pool(len(m.Data)).Put(m)
}

// SpMMBatchInto32 is the float32 SpMMBatchInto: graphs[b] applies to column
// block b of x. The CSR values stay float64 (adjacencies are implicit-ones
// patterns, so no precision is lost on the graph side); only the dense
// operand and accumulator are float32.
func SpMMBatchInto32(dst *Matrix32, graphs []*CSR, x *Matrix32) {
	nb := len(graphs)
	if nb == 0 || x.Cols%nb != 0 {
		panic(fmt.Sprintf("tensor: SpMMBatchInto32 %d blocks over %d columns", nb, x.Cols))
	}
	d := x.Cols / nb
	work := 0
	for _, g := range graphs {
		if g.Rows != x.Rows || g.Cols != x.Rows {
			panic(fmt.Sprintf("tensor: SpMMBatchInto32 graph %dx%d for %d-row batch", g.Rows, g.Cols, x.Rows))
		}
		work += g.NNZ() * d
	}
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: SpMMBatchInto32 dst %dx%d for %dx%d result", dst.Rows, dst.Cols, x.Rows, x.Cols))
	}
	// Block-outer, row-inner with register accumulators — same structure and
	// rationale as SpMMBatchInto (see there); float32 halves the bytes per
	// gathered row on top.
	rowRange := func(lo, hi int) {
		for b, g := range graphs {
			off := b * d
			if g.Val == nil {
				switch {
				case useAVX2 && d == 4:
					spmmCSROnes4F32AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case useAVX2 && d == 8:
					spmmCSROnes8F32AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case useAVX2 && d == 16:
					spmmCSROnes16F32AVX2(dst.Data[lo*x.Cols+off:], g.RowPtr[lo:hi+1], g.Col, x.Data, hi-lo, x.Cols, off)
				case d == 1:
					for i := lo; i < hi; i++ {
						var acc float32
						for _, c := range g.Col[g.RowPtr[i]:g.RowPtr[i+1]] {
							acc += x.Data[int(c)*x.Cols+off]
						}
						dst.Data[i*x.Cols+off] = acc
					}
				case d == 4:
					for i := lo; i < hi; i++ {
						spmmRowOnes4f32(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				case d == 8:
					for i := lo; i < hi; i++ {
						spmmRowOnes8f32(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				case d == 16:
					for i := lo; i < hi; i++ {
						spmmRowOnes16f32(dst.Data[i*x.Cols+off:], g.Col[g.RowPtr[i]:g.RowPtr[i+1]], x.Data, x.Cols, off)
					}
				default:
					for i := lo; i < hi; i++ {
						ob := dst.Data[i*x.Cols+off:][:d]
						for j := range ob {
							ob[j] = 0
						}
						for _, c := range g.Col[g.RowPtr[i]:g.RowPtr[i+1]] {
							xb := x.Data[int(c)*x.Cols+off:][:d]
							for j, xv := range xb {
								ob[j] += xv
							}
						}
					}
				}
				continue
			}
			for i := lo; i < hi; i++ {
				ob := dst.Data[i*x.Cols+off:][:d]
				for j := range ob {
					ob[j] = 0
				}
				for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
					v := g.at(k)
					if v == 0 {
						continue
					}
					xb := x.Data[int(g.Col[k])*x.Cols+off:][:d]
					if v == 1 {
						for j, xv := range xb {
							ob[j] += xv
						}
						continue
					}
					v32 := float32(v)
					for j, xv := range xb {
						ob[j] += v32 * xv
					}
				}
			}
		}
	}
	if workers := parallel.Limit(); workers > 1 && work >= spmmParallelCutoff && x.Rows > 1 {
		if workers > x.Rows {
			workers = x.Rows
		}
		chunk := (x.Rows + workers - 1) / workers
		blocks := (x.Rows + chunk - 1) / chunk
		parallel.ForEachN(blocks, workers, func(b int) {
			lo := b * chunk
			hi := lo + chunk
			if hi > x.Rows {
				hi = x.Rows
			}
			rowRange(lo, hi)
		})
		return
	}
	rowRange(0, x.Rows)
}

// MatMulBlocksInto32 is the float32 MatMulBlocksInto: one shared din×dout
// weight applied to every column block of the target-major batch.
func MatMulBlocksInto32(dst, x, w *Matrix32, blocks int) {
	din, dout := w.Rows, w.Cols
	if blocks <= 0 || x.Cols != blocks*din {
		panic(fmt.Sprintf("tensor: MatMulBlocksInto32 %d blocks of %d over %d columns", blocks, din, x.Cols))
	}
	if dst.Rows != x.Rows || dst.Cols != blocks*dout {
		panic(fmt.Sprintf("tensor: MatMulBlocksInto32 dst %dx%d for %dx%d result", dst.Rows, dst.Cols, x.Rows, blocks*dout))
	}
	rowRange := func(lo, hi int) {
		// The AVX2 kernels use fused multiply-adds (one rounding per
		// multiply-add instead of two), which sits within the float32
		// tolerance contract — and closer to the float64 oracle.
		if useAVX2 && hi > lo {
			switch {
			case dout == 8:
				matMulBlocksF32AVX2(dst.Data[lo*dst.Cols:], x.Data[lo*x.Cols:], w.Data, hi-lo, blocks, din, x.Cols, dst.Cols)
				return
			case dout == 1 && din%8 == 0:
				matMulHeadF32AVX2(dst.Data[lo*dst.Cols:], x.Data[lo*x.Cols:], w.Data, hi-lo, blocks, din, x.Cols, dst.Cols)
				return
			}
		}
		for i := lo; i < hi; i++ {
			xRow := x.Data[i*x.Cols : (i+1)*x.Cols]
			outRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			switch dout {
			case 8:
				for b := 0; b < blocks; b++ {
					matMulRow8f32(outRow[b*8:(b+1)*8], xRow[b*din:(b+1)*din], w.Data)
				}
			case 1:
				for b := 0; b < blocks; b++ {
					outRow[b] = matMulRow1f32(xRow[b*din:(b+1)*din], w.Data)
				}
			default:
				for j := range outRow {
					outRow[j] = 0
				}
				for b := 0; b < blocks; b++ {
					xb := xRow[b*din : (b+1)*din]
					ob := outRow[b*dout : (b+1)*dout]
					for k, mv := range xb {
						if mv == 0 {
							continue
						}
						wRow := w.Data[k*dout : (k+1)*dout]
						for j, wv := range wRow {
							ob[j] += mv * wv
						}
					}
				}
			}
		}
	}
	work := x.Rows * x.Cols * dout
	if workers := parallel.Limit(); workers > 1 && work >= matMulBlocksParallelCutoff && x.Rows > 1 {
		if workers > x.Rows {
			workers = x.Rows
		}
		chunk := (x.Rows + workers - 1) / workers
		nblk := (x.Rows + chunk - 1) / chunk
		parallel.ForEachN(nblk, workers, func(b int) {
			lo := b * chunk
			hi := lo + chunk
			if hi > x.Rows {
				hi = x.Rows
			}
			rowRange(lo, hi)
		})
		return
	}
	rowRange(0, x.Rows)
}

// Float32 mirrors of the register-accumulator row kernels in batch.go; same
// ordering guarantees, single-precision arithmetic.
func spmmRowOnes4f32(ob []float32, cols []int32, x []float32, stride, off int) {
	var a0, a1, a2, a3 float32
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:4:4]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
}

func spmmRowOnes8f32(ob []float32, cols []int32, x []float32, stride, off int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float32
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:8:8]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
		a4 += xb[4]
		a5 += xb[5]
		a6 += xb[6]
		a7 += xb[7]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
}

func spmmRowOnes16f32(ob []float32, cols []int32, x []float32, stride, off int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float32
	var a8, a9, a10, a11, a12, a13, a14, a15 float32
	for _, c := range cols {
		xb := x[int(c)*stride+off:]
		xb = xb[:16:16]
		a0 += xb[0]
		a1 += xb[1]
		a2 += xb[2]
		a3 += xb[3]
		a4 += xb[4]
		a5 += xb[5]
		a6 += xb[6]
		a7 += xb[7]
		a8 += xb[8]
		a9 += xb[9]
		a10 += xb[10]
		a11 += xb[11]
		a12 += xb[12]
		a13 += xb[13]
		a14 += xb[14]
		a15 += xb[15]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
	ob[8], ob[9], ob[10], ob[11] = a8, a9, a10, a11
	ob[12], ob[13], ob[14], ob[15] = a12, a13, a14, a15
}

func matMulRow8f32(ob []float32, xb []float32, w []float32) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float32
	for k, mv := range xb {
		if mv == 0 {
			continue
		}
		wr := w[k*8:]
		wr = wr[:8:8]
		a0 += mv * wr[0]
		a1 += mv * wr[1]
		a2 += mv * wr[2]
		a3 += mv * wr[3]
		a4 += mv * wr[4]
		a5 += mv * wr[5]
		a6 += mv * wr[6]
		a7 += mv * wr[7]
	}
	ob[0], ob[1], ob[2], ob[3] = a0, a1, a2, a3
	ob[4], ob[5], ob[6], ob[7] = a4, a5, a6, a7
}

func matMulRow1f32(xb []float32, w []float32) float32 {
	var acc float32
	for k, mv := range xb {
		if mv == 0 {
			continue
		}
		acc += mv * w[k]
	}
	return acc
}

// AddReLUInto32 is the float32 AddReLUInto: dst[i] = max(dst[i]+a[i], 0)
// with the same clamp semantics, vectorized under AVX2.
func AddReLUInto32(dst, a []float32) {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: AddReLUInto32 %d vs %d elements", len(dst), len(a)))
	}
	if useAVX2 {
		addReLUInto32AVX2(dst, a)
		return
	}
	for i, v := range a {
		s := dst[i] + v
		if s < 0 {
			s = 0
		}
		dst[i] = s
	}
}
