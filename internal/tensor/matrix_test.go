package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 5, 5, 1)
	c := MatMul(a, Eye(5))
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatalf("A·I != A at %d", i)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposedInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 4, 7, 1)
	b := a.Transposed().Transposed()
	if !a.SameShape(b) {
		t.Fatal("shape changed")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("double transpose changed values")
		}
	}
}

func TestTransposeMatMulIdentityLaw(t *testing.T) {
	// (AB)ᵀ == BᵀAᵀ
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 3, 4, 1)
	b := Randn(rng, 4, 5, 1)
	lhs := MatMul(a, b).Transposed()
	rhs := MatMul(b.Transposed(), a.Transposed())
	for i := range lhs.Data {
		if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-12 {
			t.Fatal("(AB)ᵀ != BᵀAᵀ")
		}
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := AddMat(a, b).Data; got[0] != 6 || got[3] != 12 {
		t.Errorf("AddMat = %v", got)
	}
	if got := SubMat(b, a).Data; got[0] != 4 || got[3] != 4 {
		t.Errorf("SubMat = %v", got)
	}
	if got := HadamardMat(a, b).Data; got[0] != 5 || got[3] != 32 {
		t.Errorf("HadamardMat = %v", got)
	}
	// Inputs unchanged.
	if a.Data[0] != 1 || b.Data[0] != 5 {
		t.Error("inputs mutated")
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	c := ConcatCols(a, b)
	if c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	want := []float64{1, 3, 4, 2, 5, 6}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Concat[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestRowColAccessors(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if r := m.Row(1); r[0] != 4 || r[2] != 6 {
		t.Errorf("Row = %v", r)
	}
	if c := m.Col(1); c[0] != 2 || c[1] != 5 {
		t.Errorf("Col = %v", c)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set failed")
	}
}

func TestSumAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float64{1, -5, 2, 0})
	if m.Sum() != -2 {
		t.Errorf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	if m.HasNaN() {
		t.Error("zero matrix reports NaN")
	}
	m.Data[3] = math.Inf(1)
	if !m.HasNaN() {
		t.Error("inf not detected")
	}
	m.Data[3] = math.NaN()
	if !m.HasNaN() {
		t.Error("NaN not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := GlorotUniform(rng, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v outside Glorot limit %v", v, limit)
		}
	}
}

// Property: matrix addition commutes.
func TestAddCommutative(t *testing.T) {
	f := func(xs [6]float64, ys [6]float64) bool {
		a := FromSlice(2, 3, xs[:])
		b := FromSlice(2, 3, ys[:])
		l := AddMat(a, b)
		r := AddMat(b, a)
		for i := range l.Data {
			if l.Data[i] != r.Data[i] && !(math.IsNaN(l.Data[i]) && math.IsNaN(r.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		a := Randn(rng, 3, 4, 1)
		b := Randn(rng, 4, 2, 1)
		c := Randn(rng, 4, 2, 1)
		lhs := MatMul(a, AddMat(b, c))
		rhs := AddMat(MatMul(a, b), MatMul(a, c))
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-10 {
				t.Fatalf("distribution law violated at trial %d", trial)
			}
		}
	}
}
