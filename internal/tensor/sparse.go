package tensor

import (
	"fmt"
	"sync"

	"after/internal/parallel"
)

// CSR is a compressed-sparse-row matrix: the sparse counterpart of Matrix
// used for occlusion adjacencies, whose edge count E is far below N² in real
// DOG frames. Row i's structural nonzeros are Col[RowPtr[i]:RowPtr[i+1]]
// (ascending column order by convention); Val holds the matching values, or
// is nil for a binary pattern whose nonzeros are implicitly 1 — the
// adjacency case, which then shares the occlusion converter's flat neighbor
// array zero-copy.
//
// Message passing is a per-edge computation, so every kernel here is O(E·d)
// instead of the O(N²·d) a densified adjacency costs; that asymptotic gap is
// what lets POSHGNN step 2000-user rooms (see `aftersim -exp scale`).
type CSR struct {
	Rows, Cols int
	// RowPtr has Rows+1 entries; RowPtr[0] == 0 and RowPtr[Rows] == NNZ().
	RowPtr []int32
	// Col holds the column index of every structural nonzero, row-major.
	Col []int32
	// Val holds the nonzero values, or nil for an implicit all-ones pattern.
	Val []float64
	// Symmetric records that the matrix equals its transpose (pattern and
	// values), letting T return the receiver itself: the occlusion adjacency
	// is symmetric, so SpMM's backward pass reuses the forward CSR.
	Symmetric bool

	transOnce sync.Once
	trans     *CSR
	rnOnce    sync.Once
	rn        *CSR
}

// NewCSR validates and wraps the given CSR arrays without copying them. Val
// may be nil (implicit ones). symmetric declares A == Aᵀ; the constructor
// trusts the caller (the occlusion converter emits both edge directions).
func NewCSR(rows, cols int, rowPtr, col []int32, val []float64, symmetric bool) *CSR {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid CSR shape %dx%d", rows, cols))
	}
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("tensor: CSR RowPtr length %d for %d rows", len(rowPtr), rows))
	}
	if rowPtr[0] != 0 || int(rowPtr[rows]) != len(col) {
		panic(fmt.Sprintf("tensor: CSR RowPtr bounds [%d,%d] for %d nonzeros", rowPtr[0], rowPtr[rows], len(col)))
	}
	if val != nil && len(val) != len(col) {
		panic(fmt.Sprintf("tensor: CSR Val length %d for %d nonzeros", len(val), len(col)))
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, Col: col, Val: val, Symmetric: symmetric}
}

// CSRFromDense extracts the nonzero structure of m. Exact zeros are dropped;
// everything else is kept with its value. Intended for tests and small
// compatibility shims, not hot paths.
func CSRFromDense(m *Matrix) *CSR {
	rowPtr := make([]int32, m.Rows+1)
	var col []int32
	var val []float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.Data[i*m.Cols+j]; v != 0 {
				col = append(col, int32(j))
				val = append(val, v)
			}
		}
		rowPtr[i+1] = int32(len(col))
	}
	return NewCSR(m.Rows, m.Cols, rowPtr, col, val, false)
}

// NNZ returns the number of structural nonzeros.
func (c *CSR) NNZ() int { return len(c.Col) }

// EdgeCount returns the undirected edge count of a symmetric 0/1 adjacency
// pattern: NNZ/2, since the converter stores both directions of every edge.
// It panics for non-symmetric matrices, where the notion is undefined.
func (c *CSR) EdgeCount() int {
	if !c.Symmetric {
		panic("tensor: EdgeCount on non-symmetric CSR")
	}
	return c.NNZ() / 2
}

// at returns the value of the k-th stored nonzero.
func (c *CSR) at(k int32) float64 {
	if c.Val == nil {
		return 1
	}
	return c.Val[k]
}

// Dense materializes the CSR as a dense matrix (tests and compat paths).
func (c *CSR) Dense() *Matrix {
	m := NewMatrix(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			m.Data[i*c.Cols+int(c.Col[k])] = c.at(k)
		}
	}
	return m
}

// T returns the transpose. Symmetric matrices return the receiver (zero
// cost — this is the property the autodiff backward pass exploits for
// adjacencies); otherwise the transpose is built once with a counting sort
// and memoized, so repeated backward passes through one frame pay for it a
// single time.
func (c *CSR) T() *CSR {
	if c.Symmetric {
		return c
	}
	c.transOnce.Do(func() {
		rowPtr := make([]int32, c.Cols+1)
		for _, j := range c.Col {
			rowPtr[j+1]++
		}
		for j := 0; j < c.Cols; j++ {
			rowPtr[j+1] += rowPtr[j]
		}
		col := make([]int32, len(c.Col))
		var val []float64
		if c.Val != nil {
			val = make([]float64, len(c.Val))
		}
		cursor := make([]int32, c.Cols)
		copy(cursor, rowPtr[:c.Cols])
		for i := 0; i < c.Rows; i++ {
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				j := c.Col[k]
				col[cursor[j]] = int32(i)
				if val != nil {
					val[cursor[j]] = c.Val[k]
				}
				cursor[j]++
			}
		}
		c.trans = NewCSR(c.Cols, c.Rows, rowPtr, col, val, false)
	})
	return c.trans
}

// RowNormalized returns D⁻¹·A, the random-walk transition matrix over the
// pattern of c (rows with no nonzeros stay zero). The result shares c's
// structure arrays, carries explicit values, and is memoized — DCRNN asks
// for it once per step while several steps share one frame. The result is
// not symmetric even when c is; its transpose is built lazily by T.
func (c *CSR) RowNormalized() *CSR {
	c.rnOnce.Do(func() {
		val := make([]float64, len(c.Col))
		for i := 0; i < c.Rows; i++ {
			lo, hi := c.RowPtr[i], c.RowPtr[i+1]
			rowSum := 0.0
			for k := lo; k < hi; k++ {
				rowSum += c.at(k)
			}
			if rowSum == 0 {
				continue
			}
			inv := 1 / rowSum
			for k := lo; k < hi; k++ {
				val[k] = c.at(k) * inv
			}
		}
		c.rn = NewCSR(c.Rows, c.Cols, c.RowPtr, c.Col, val, false)
	})
	return c.rn
}

// spmmParallelCutoff is the multiply-add count below which SpMMInto stays on
// the calling goroutine: tiny products (the hidden dimension is 8 and most
// rooms have a few thousand edges) lose more to fan-out overhead than the
// extra cores return. Above it, rows are split into contiguous blocks over
// the shared worker pool; each block owns disjoint dst rows, so the result
// is bit-identical for every worker count.
const spmmParallelCutoff = 1 << 18

// SpMM returns a·x as a new dense matrix, where a is Rows×Cols sparse and x
// is Cols×d dense.
func SpMM(a *CSR, x *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, x.Cols)
	SpMMInto(dst, a, x)
	return dst
}

// SpMMInto computes a·x into dst (a.Rows×x.Cols, zeroed first) — the
// pooled-workspace variant: route dst through a Workspace to keep the hot
// path allocation-free. Cost is O(NNZ·d); large products are row-parallel
// over the internal/parallel pool.
func SpMMInto(dst *Matrix, a *CSR, x *Matrix) {
	if a.Cols != x.Rows {
		panic(fmt.Sprintf("tensor: SpMM %dx%d × %dx%d", a.Rows, a.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("tensor: SpMMInto dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, x.Cols))
	}
	d := x.Cols
	rowRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outRow := dst.Data[i*d : (i+1)*d]
			for j := range outRow {
				outRow[j] = 0
			}
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				v := a.at(k)
				if v == 0 {
					continue
				}
				xRow := x.Data[int(a.Col[k])*d : (int(a.Col[k])+1)*d]
				if v == 1 {
					for j, xv := range xRow {
						outRow[j] += xv
					}
					continue
				}
				for j, xv := range xRow {
					outRow[j] += v * xv
				}
			}
		}
	}
	work := a.NNZ() * d
	if workers := parallel.Limit(); workers > 1 && work >= spmmParallelCutoff && a.Rows > 1 {
		if workers > a.Rows {
			workers = a.Rows
		}
		chunk := (a.Rows + workers - 1) / workers
		blocks := (a.Rows + chunk - 1) / chunk
		parallel.ForEachN(blocks, workers, func(b int) {
			lo := b * chunk
			hi := lo + chunk
			if hi > a.Rows {
				hi = a.Rows
			}
			rowRange(lo, hi)
		})
		return
	}
	rowRange(0, a.Rows)
}

// SpMMT returns the autodiff node for a·x with a constant sparse a: the
// sparse counterpart of MatMulT(Constant(adj), x). The backward pass is
// ∂L/∂x = Aᵀ·∂L/∂out, computed with the same SpMM kernel over a.T() — which
// is a itself for the symmetric occlusion adjacency, so no transpose is ever
// materialized on the training path.
func SpMMT(a *CSR, x *Tensor) *Tensor {
	out := newOp(SpMM(a, x.Value), x)
	out.back = func() {
		if !x.requires {
			return
		}
		ws := defaultWorkspace
		g := ws.Get(a.Cols, out.grad.Cols)
		SpMMInto(g, a.T(), out.grad)
		x.accumulate(g)
		ws.Put(g)
	}
	return out
}

// QuadraticFormCSR returns the scalar rᵀ·A·r for a column vector tensor r
// and a constant sparse A — the occlusion penalty of the POSHGNN loss,
// evaluated per-edge in O(E). The gradient is (A+Aᵀ)·r, which collapses to
// 2·A·r for the symmetric adjacency.
func QuadraticFormCSR(r *Tensor, a *CSR) *Tensor {
	if r.Value.Cols != 1 || a.Rows != a.Cols || a.Rows != r.Value.Rows {
		panic(fmt.Sprintf("tensor: QuadraticFormCSR r %dx%d, A %dx%d",
			r.Value.Rows, r.Value.Cols, a.Rows, a.Cols))
	}
	ar := SpMM(a, r.Value) // |V|×1, captured by the backward closure
	v := NewMatrix(1, 1)
	for i, ri := range r.Value.Data {
		v.Data[0] += ri * ar.Data[i]
	}
	out := newOp(v, r)
	out.back = func() {
		ws := defaultWorkspace
		g := ws.Get(r.Value.Rows, 1)
		if a.Symmetric {
			for i := range g.Data {
				g.Data[i] = 2 * ar.Data[i] * out.grad.Data[0]
			}
		} else {
			atr := ws.Get(a.Cols, 1)
			SpMMInto(atr, a.T(), r.Value)
			for i := range g.Data {
				g.Data[i] = (ar.Data[i] + atr.Data[i]) * out.grad.Data[0]
			}
			ws.Put(atr)
		}
		r.accumulate(g)
		ws.Put(g)
	}
	return out
}
