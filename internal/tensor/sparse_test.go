package tensor

import (
	"math"
	"math/rand"
	"testing"

	"after/internal/parallel"
)

// randomSymmetricAdjacency builds a random 0/1 symmetric pattern (zero
// diagonal, both edge directions stored) of size n with edge probability p,
// returning it both dense and as an implicit-ones CSR.
func randomSymmetricAdjacency(rng *rand.Rand, n int, p float64) (*Matrix, *CSR) {
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				dense.Set(i, j, 1)
				dense.Set(j, i, 1)
			}
		}
	}
	rowPtr := make([]int32, n+1)
	var col []int32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dense.At(i, j) != 0 {
				col = append(col, int32(j))
			}
		}
		rowPtr[i+1] = int32(len(col))
	}
	return dense, NewCSR(n, n, rowPtr, col, nil, true)
}

func maxAbsDiff(a, b *Matrix) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 40} {
		for _, p := range []float64{0, 0.1, 0.5, 1} {
			dense, csr := randomSymmetricAdjacency(rng, n, p)
			x := Randn(rng, n, 5, 1)
			got := SpMM(csr, x)
			want := MatMul(dense, x)
			if d := maxAbsDiff(got, want); d > 0 {
				t.Fatalf("n=%d p=%v: SpMM differs from dense by %g", n, p, d)
			}
			if csr.NNZ() != int(csr.RowPtr[n]) {
				t.Fatalf("NNZ inconsistent with RowPtr")
			}
		}
	}
}

func TestSpMMWeightedAndRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dense := NewMatrix(6, 9)
	for i := range dense.Data {
		if rng.Float64() < 0.3 {
			dense.Data[i] = rng.NormFloat64()
		}
	}
	csr := CSRFromDense(dense)
	x := Randn(rng, 9, 4, 1)
	if d := maxAbsDiff(SpMM(csr, x), MatMul(dense, x)); d > 1e-15 {
		t.Fatalf("weighted SpMM differs by %g", d)
	}
	// Round-trip: Dense(CSRFromDense(m)) == m.
	if d := maxAbsDiff(csr.Dense(), dense); d != 0 {
		t.Fatalf("dense round-trip differs by %g", d)
	}
}

func TestSpMMParallelPathMatchesSequential(t *testing.T) {
	// Big enough to cross spmmParallelCutoff: nnz*d >= 2^18.
	rng := rand.New(rand.NewSource(13))
	n := 600
	dense, csr := randomSymmetricAdjacency(rng, n, 0.1) // ~36k nnz
	x := Randn(rng, n, 8, 1)
	if csr.NNZ()*x.Cols < spmmParallelCutoff {
		t.Fatalf("test instance too small to exercise the parallel path: %d", csr.NNZ()*x.Cols)
	}
	var seq, par *Matrix
	parallel.WithLimit(1, func() { seq = SpMM(csr, x) })
	parallel.WithLimit(8, func() { par = SpMM(csr, x) })
	if d := maxAbsDiff(seq, par); d != 0 {
		t.Fatalf("parallel SpMM differs from sequential by %g (must be bit-identical)", d)
	}
	if d := maxAbsDiff(par, MatMul(dense, x)); d > 0 {
		t.Fatalf("parallel SpMM differs from dense by %g", d)
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dense := NewMatrix(5, 8)
	for i := range dense.Data {
		if rng.Float64() < 0.4 {
			dense.Data[i] = rng.NormFloat64()
		}
	}
	csr := CSRFromDense(dense)
	if d := maxAbsDiff(csr.T().Dense(), dense.Transposed()); d != 0 {
		t.Fatalf("transpose differs by %g", d)
	}
	if csr.T() != csr.T() {
		t.Error("transpose not memoized")
	}
	_, sym := randomSymmetricAdjacency(rng, 6, 0.5)
	if sym.T() != sym {
		t.Error("symmetric CSR must return itself from T")
	}
}

func TestCSRRowNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dense, csr := randomSymmetricAdjacency(rng, 10, 0.3)
	rn := csr.RowNormalized()
	if rn != csr.RowNormalized() {
		t.Error("RowNormalized not memoized")
	}
	if rn.Symmetric {
		t.Error("row-normalized matrix must not claim symmetry")
	}
	got := rn.Dense()
	for i := 0; i < 10; i++ {
		deg := 0.0
		for j := 0; j < 10; j++ {
			deg += dense.At(i, j)
		}
		for j := 0; j < 10; j++ {
			want := 0.0
			if deg > 0 {
				want = dense.At(i, j) / deg
			}
			if math.Abs(got.At(i, j)-want) > 1e-15 {
				t.Fatalf("rowNorm[%d,%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestCSREdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	dense, csr := randomSymmetricAdjacency(rng, 12, 0.4)
	want := 0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if dense.At(i, j) != 0 {
				want++
			}
		}
	}
	if got := csr.EdgeCount(); got != want {
		t.Fatalf("EdgeCount = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("EdgeCount on non-symmetric CSR must panic")
		}
	}()
	CSRFromDense(dense).EdgeCount()
}

// TestGradSpMM is the finite-difference check on SpMM's backward pass for
// both the symmetric adjacency (Aᵀ reuse) and a genuinely non-symmetric
// weighted matrix (explicit transpose path).
func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(17))

	denseSym, sym := randomSymmetricAdjacency(rng, 7, 0.4)
	x := Randn(rng, 7, 3, 1)
	tx := Variable(x)
	// Loss = sum((A·x) ⊗ (A·x)) exercises a non-uniform upstream gradient.
	ax := SpMMT(sym, tx)
	Backward(Sum(Mul(ax, ax)))
	f := func() float64 {
		m := MatMul(denseSym, x)
		s := 0.0
		for _, v := range m.Data {
			s += v * v
		}
		return s
	}
	checkGrad(t, "spmm-sym/x", tx.Grad(), numericalGrad(x, f))

	denseW := NewMatrix(5, 6)
	for i := range denseW.Data {
		if rng.Float64() < 0.4 {
			denseW.Data[i] = rng.NormFloat64()
		}
	}
	w := CSRFromDense(denseW)
	y := Randn(rng, 6, 2, 1)
	ty := Variable(y)
	ay := SpMMT(w, ty)
	Backward(Sum(Mul(ay, ay)))
	g := func() float64 {
		m := MatMul(denseW, y)
		s := 0.0
		for _, v := range m.Data {
			s += v * v
		}
		return s
	}
	checkGrad(t, "spmm-weighted/y", ty.Grad(), numericalGrad(y, g))
}

func TestGradQuadraticFormCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	denseSym, sym := randomSymmetricAdjacency(rng, 8, 0.4)
	r := Randn(rng, 8, 1, 1)
	tr := Variable(r)
	Backward(QuadraticFormCSR(tr, sym))
	f := func() float64 {
		ar := MatMul(denseSym, r)
		s := 0.0
		for i := range r.Data {
			s += r.Data[i] * ar.Data[i]
		}
		return s
	}
	checkGrad(t, "quadform-csr-sym", tr.Grad(), numericalGrad(r, f))

	// Non-symmetric path: value and gradient against the dense reference op.
	denseW := NewMatrix(6, 6)
	for i := range denseW.Data {
		if rng.Float64() < 0.4 {
			denseW.Data[i] = rng.NormFloat64()
		}
	}
	w := CSRFromDense(denseW)
	r2 := Randn(rng, 6, 1, 1)
	sp, dn := Variable(r2), Variable(r2.Clone())
	lossSp := QuadraticFormCSR(sp, w)
	lossDn := QuadraticForm(dn, denseW)
	if math.Abs(lossSp.Value.Data[0]-lossDn.Value.Data[0]) > 1e-12 {
		t.Fatalf("quadform values differ: %v vs %v", lossSp.Value.Data[0], lossDn.Value.Data[0])
	}
	Backward(lossSp)
	Backward(lossDn)
	if d := maxAbsDiff(sp.Grad(), dn.Grad()); d > 1e-12 {
		t.Fatalf("quadform gradients differ by %g", d)
	}
}

func TestQuadraticFormCSRMatchesDenseValue(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dense, csr := randomSymmetricAdjacency(rng, 15, 0.3)
	r := Randn(rng, 15, 1, 1)
	sp := QuadraticFormCSR(Constant(r), csr)
	dn := QuadraticForm(Constant(r), dense)
	if math.Abs(sp.Value.Data[0]-dn.Value.Data[0]) > 1e-12 {
		t.Fatalf("rᵀAr sparse %v vs dense %v", sp.Value.Data[0], dn.Value.Data[0])
	}
}

func TestNewCSRValidation(t *testing.T) {
	cases := []func(){
		func() { NewCSR(0, 1, []int32{0}, nil, nil, false) },
		func() { NewCSR(2, 2, []int32{0, 1}, []int32{0}, nil, false) },       // short RowPtr
		func() { NewCSR(2, 2, []int32{0, 1, 3}, []int32{0, 1}, nil, false) }, // bad bound
		func() { NewCSR(1, 1, []int32{0, 1}, []int32{0}, []float64{1, 2}, false) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
