package tensor

import "sync"

// Workspace is a size-bucketed scratch-buffer pool for Matrix values. The
// autodiff tape is MatMul/Clone-heavy: every Backward pass materializes
// transposes, negations, and activation-derivative products that live only
// until the next accumulate call. Routing those short-lived temporaries
// through a Workspace cuts the allocation churn of training (the
// BenchmarkTrainingEpoch allocs/op drop is recorded in EXPERIMENTS.md).
//
// A Workspace is safe for concurrent use — the parallel model-selection grid
// trains several models at once against the shared default workspace.
//
// Discipline: Get hands out a matrix with undefined contents (use GetZeroed
// when the caller accumulates into it); Put returns it. Forgetting Put is
// safe (the buffer is garbage-collected); Putting a matrix that is still
// referenced elsewhere is the caller's bug, exactly like any pool.
type Workspace struct {
	pools sync.Map // total element count -> *sync.Pool of *Matrix
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// defaultWorkspace backs the autodiff engine's internal temporaries.
var defaultWorkspace = NewWorkspace()

// Scratch returns the shared default workspace, for callers outside the
// package that want to pool their own temporaries alongside the tape's.
func Scratch() *Workspace { return defaultWorkspace }

func (w *Workspace) pool(n int) *sync.Pool {
	if p, ok := w.pools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := w.pools.LoadOrStore(n, &sync.Pool{New: func() any {
		return &Matrix{Data: make([]float64, n)}
	}})
	return p.(*sync.Pool)
}

// Get returns a rows×cols matrix with undefined contents. Any rows×cols
// factorization of the same element count shares one bucket.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("tensor: Workspace.Get with non-positive shape")
	}
	m := w.pool(rows * cols).Get().(*Matrix)
	m.Rows, m.Cols = rows, cols
	return m
}

// GetZeroed returns a rows×cols matrix with every element set to 0.
func (w *Workspace) GetZeroed(rows, cols int) *Matrix {
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// GetCopy returns a pooled deep copy of src.
func (w *Workspace) GetCopy(src *Matrix) *Matrix {
	m := w.Get(src.Rows, src.Cols)
	copy(m.Data, src.Data)
	return m
}

// Put returns m to the workspace. m must not be used afterwards.
func (w *Workspace) Put(m *Matrix) {
	if m == nil {
		return
	}
	w.pool(len(m.Data)).Put(m)
}
