// Package userstudy simulates the paper's 48-participant XR user study
// (Sec. V-C). The original study put real people in a Unity3D
// videoconferencing room, showed each of them the adaptive display produced
// by five methods, and collected 5-point Likert satisfaction scores. This
// stand-in replaces the humans with a calibrated response model: each
// simulated participant's Likert feedback is a noisy monotone function of
// the utility she actually experienced, which is precisely the relationship
// Table VIII quantifies (Pearson ≈ 0.93, Spearman ≈ 0.70 between AFTER
// utility and satisfaction).
package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"after/internal/dataset"
	"after/internal/metrics"
	"after/internal/sim"
	"after/internal/stats"
)

// Participants is the number of study subjects, matching the paper.
const Participants = 48

// Config controls the simulated study.
type Config struct {
	// Room is the shared conferencing space; every user doubles as a study
	// participant (participant i is user i). Its N should be Participants.
	Room *dataset.Room
	// Beta is the social-presence weight used for the experienced utility.
	Beta float64
	// NoiseStd is the feedback noise in Likert units (0 = 0.45): how far a
	// participant's reported satisfaction strays from her experienced
	// utility. Larger values weaken the Table VIII correlations.
	NoiseStd float64
	// Seed drives the response noise.
	Seed int64
}

// MethodOutcome aggregates one method's study results.
type MethodOutcome struct {
	Method string
	// Utility, Preference, Social are mean per-step experienced utilities
	// averaged over participants (the bars of Fig. 4).
	Utility    float64
	Preference float64
	Social     float64
	// Feedback fields are mean Likert scores in [1, 5] for overall
	// satisfaction, display customization, and feeling of company.
	Feedback           float64
	PreferenceFeedback float64
	SocialFeedback     float64
	// PerParticipant holds each subject's (utility, feedback) pairs for the
	// correlation analysis.
	PerParticipant []ParticipantRecord
}

// ParticipantRecord is one subject's outcome under one method.
type ParticipantRecord struct {
	Participant int
	Utility     float64
	Preference  float64
	Social      float64
	Feedback    float64
	PrefScore   float64
	SocialScore float64
}

// Study holds all outcomes plus the correlation analysis of Table VIII.
type Study struct {
	Outcomes []MethodOutcome
	// PearsonPref/Spearman... correlate per-(participant, method) utilities
	// with the matching Likert feedback, pooled across methods.
	PearsonPref     float64
	PearsonSocial   float64
	PearsonUtility  float64
	SpearmanPref    float64
	SpearmanSocial  float64
	SpearmanUtility float64
}

// Run executes the study: every participant experiences every method in the
// shared room, then reports Likert feedback through the response model.
func Run(cfg Config, methods []sim.Recommender) (*Study, error) {
	if cfg.Room == nil {
		return nil, fmt.Errorf("userstudy: nil room")
	}
	if len(methods) == 0 {
		return nil, fmt.Errorf("userstudy: no methods")
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.45
	}
	room := cfg.Room
	participants := room.N
	targets := make([]int, participants)
	for i := range targets {
		targets[i] = i
	}
	// Raw experienced utilities per method per participant.
	raws := make([]raw, 0, len(methods))
	for _, m := range methods {
		var rs []metrics.Result
		for _, target := range targets {
			er, err := runOne(m, room, target, cfg.Beta)
			if err != nil {
				return nil, err
			}
			rs = append(rs, er)
		}
		raws = append(raws, raw{method: m.Name(), results: rs})
	}
	// Calibrate the Likert mapping on the pooled distribution so scores
	// span the scale: z-score → 3 + 1.2·z + noise, clamped to [1, 5].
	var pool []float64
	for _, r := range raws {
		for _, res := range r.results {
			pool = append(pool, res.Utility)
		}
	}
	mean := stats.Mean(pool)
	sd := stats.StdDev(pool)
	if sd == 0 || math.IsNaN(sd) {
		sd = 1
	}
	prefPool, socPool := poolComponents(raws, func(r metrics.Result) float64 { return r.Preference }),
		poolComponents(raws, func(r metrics.Result) float64 { return r.Social })
	likert := func(x, mean, sd, noise float64) float64 {
		z := (x - mean) / sd
		return clampLikert(3 + 1.2*z + noise)
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 97))
	study := &Study{}
	T := float64(room.T() + 1)
	for _, r := range raws {
		out := MethodOutcome{Method: r.method}
		for i, res := range r.results {
			rec := ParticipantRecord{
				Participant: i,
				Utility:     res.Utility / T,
				Preference:  res.Preference / T,
				Social:      res.Social / T,
			}
			// One shared mood term per (participant, method) session plus
			// per-question jitter: answers to the three questions correlate,
			// as real subjects' do.
			mood := rng.NormFloat64() * cfg.NoiseStd
			rec.Feedback = likert(res.Utility, mean, sd, mood+0.3*rng.NormFloat64())
			rec.PrefScore = likert(res.Preference, prefPool[0], prefPool[1], mood+0.3*rng.NormFloat64())
			rec.SocialScore = likert(res.Social, socPool[0], socPool[1], mood+0.3*rng.NormFloat64())
			out.PerParticipant = append(out.PerParticipant, rec)
			out.Utility += rec.Utility
			out.Preference += rec.Preference
			out.Social += rec.Social
			out.Feedback += rec.Feedback
			out.PreferenceFeedback += rec.PrefScore
			out.SocialFeedback += rec.SocialScore
		}
		n := float64(len(r.results))
		out.Utility /= n
		out.Preference /= n
		out.Social /= n
		out.Feedback /= n
		out.PreferenceFeedback /= n
		out.SocialFeedback /= n
		study.Outcomes = append(study.Outcomes, out)
	}
	if err := study.correlate(); err != nil {
		return nil, err
	}
	return study, nil
}

func runOne(rec sim.Recommender, room *dataset.Room, target int, beta float64) (metrics.Result, error) {
	res, err := sim.Evaluate([]sim.Recommender{rec}, room, []int{target}, beta)
	if err != nil {
		return metrics.Result{}, err
	}
	return res[rec.Name()], nil
}

// raw is one method's experienced results across all participants.
type raw struct {
	method  string
	results []metrics.Result
}

func poolComponents(raws []raw, f func(metrics.Result) float64) [2]float64 {
	var pool []float64
	for _, r := range raws {
		for _, res := range r.results {
			pool = append(pool, f(res))
		}
	}
	sd := stats.StdDev(pool)
	if sd == 0 || math.IsNaN(sd) {
		sd = 1
	}
	return [2]float64{stats.Mean(pool), sd}
}

func clampLikert(x float64) float64 {
	if x < 1 {
		return 1
	}
	if x > 5 {
		return 5
	}
	return x
}

// correlate computes the Table VIII statistics over pooled
// (participant, method) records.
func (s *Study) correlate() error {
	var util, fb, pref, prefFb, soc, socFb []float64
	for _, out := range s.Outcomes {
		for _, r := range out.PerParticipant {
			util = append(util, r.Utility)
			fb = append(fb, r.Feedback)
			pref = append(pref, r.Preference)
			prefFb = append(prefFb, r.PrefScore)
			soc = append(soc, r.Social)
			socFb = append(socFb, r.SocialScore)
		}
	}
	var err error
	if s.PearsonUtility, err = stats.Pearson(util, fb); err != nil {
		return err
	}
	if s.PearsonPref, err = stats.Pearson(pref, prefFb); err != nil {
		return err
	}
	if s.PearsonSocial, err = stats.Pearson(soc, socFb); err != nil {
		return err
	}
	if s.SpearmanUtility, err = stats.Spearman(util, fb); err != nil {
		return err
	}
	if s.SpearmanPref, err = stats.Spearman(pref, prefFb); err != nil {
		return err
	}
	if s.SpearmanSocial, err = stats.Spearman(soc, socFb); err != nil {
		return err
	}
	return nil
}

// Outcome returns the outcome for the named method, or nil.
func (s *Study) Outcome(method string) *MethodOutcome {
	for i := range s.Outcomes {
		if s.Outcomes[i].Method == method {
			return &s.Outcomes[i]
		}
	}
	return nil
}

// Ranking returns method names ordered by mean Likert feedback, best first.
func (s *Study) Ranking() []string {
	type pair struct {
		name string
		fb   float64
	}
	ps := make([]pair, len(s.Outcomes))
	for i, o := range s.Outcomes {
		ps[i] = pair{o.Method, o.Feedback}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].fb > ps[j].fb })
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return names
}
