package userstudy

import (
	"math"
	"testing"

	"after/internal/baselines"
	"after/internal/dataset"
	"after/internal/sim"
)

func studyRoom(t testing.TB) *dataset.Room {
	t.Helper()
	r, err := dataset.Generate(dataset.Config{
		Kind: dataset.SMM, PlatformUsers: 300, RoomUsers: 20, T: 15, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func methods() []sim.Recommender {
	return []sim.Recommender{
		baselines.Nearest{K: 5},
		baselines.RenderAll{},
		baselines.COMURNet{K: 5, Seed: 1, NodeBudget: 20000},
	}
}

func TestRunStudyBasics(t *testing.T) {
	room := studyRoom(t)
	study, err := Run(Config{Room: room, Beta: 0.5, Seed: 1}, methods())
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(study.Outcomes))
	}
	for _, o := range study.Outcomes {
		if len(o.PerParticipant) != room.N {
			t.Fatalf("%s: %d participants, want %d", o.Method, len(o.PerParticipant), room.N)
		}
		if o.Feedback < 1 || o.Feedback > 5 {
			t.Errorf("%s: feedback %v out of Likert range", o.Method, o.Feedback)
		}
		if o.Utility < 0 {
			t.Errorf("%s: negative utility", o.Method)
		}
		for _, r := range o.PerParticipant {
			for _, f := range []float64{r.Feedback, r.PrefScore, r.SocialScore} {
				if f < 1 || f > 5 || math.IsNaN(f) {
					t.Fatalf("%s: likert %v out of range", o.Method, f)
				}
			}
		}
	}
}

func TestStudyCorrelationsPositive(t *testing.T) {
	room := studyRoom(t)
	study, err := Run(Config{Room: room, Beta: 0.5, Seed: 2}, methods())
	if err != nil {
		t.Fatal(err)
	}
	// The response model is monotone in utility, so pooled correlations
	// must come out clearly positive (the Table VIII property).
	for name, c := range map[string]float64{
		"pearson-utility":  study.PearsonUtility,
		"spearman-utility": study.SpearmanUtility,
		"pearson-pref":     study.PearsonPref,
	} {
		if c < 0.3 {
			t.Errorf("%s = %v, want strongly positive", name, c)
		}
	}
}

func TestStudyNoiseWeakensCorrelation(t *testing.T) {
	room := studyRoom(t)
	lowNoise, err := Run(Config{Room: room, Beta: 0.5, Seed: 3, NoiseStd: 0.1}, methods())
	if err != nil {
		t.Fatal(err)
	}
	highNoise, err := Run(Config{Room: room, Beta: 0.5, Seed: 3, NoiseStd: 2.5}, methods())
	if err != nil {
		t.Fatal(err)
	}
	if lowNoise.PearsonUtility <= highNoise.PearsonUtility {
		t.Errorf("noise did not weaken correlation: %v vs %v",
			lowNoise.PearsonUtility, highNoise.PearsonUtility)
	}
}

func TestStudyDeterministic(t *testing.T) {
	room := studyRoom(t)
	a, err := Run(Config{Room: room, Beta: 0.5, Seed: 4}, methods())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Room: room, Beta: 0.5, Seed: 4}, methods())
	if err != nil {
		t.Fatal(err)
	}
	if a.PearsonUtility != b.PearsonUtility || a.Outcomes[0].Feedback != b.Outcomes[0].Feedback {
		t.Error("study not deterministic for fixed seed")
	}
}

func TestOutcomeAndRanking(t *testing.T) {
	room := studyRoom(t)
	study, err := Run(Config{Room: room, Beta: 0.5, Seed: 5}, methods())
	if err != nil {
		t.Fatal(err)
	}
	if study.Outcome("Nearest") == nil {
		t.Error("Outcome lookup failed")
	}
	if study.Outcome("nope") != nil {
		t.Error("phantom outcome")
	}
	rank := study.Ranking()
	if len(rank) != 3 {
		t.Fatalf("ranking = %v", rank)
	}
	for i := 1; i < len(rank); i++ {
		if study.Outcome(rank[i-1]).Feedback < study.Outcome(rank[i]).Feedback {
			t.Error("ranking not sorted by feedback")
		}
	}
}

func TestRunStudyErrors(t *testing.T) {
	if _, err := Run(Config{}, methods()); err == nil {
		t.Error("nil room accepted")
	}
	if _, err := Run(Config{Room: studyRoom(t)}, nil); err == nil {
		t.Error("no methods accepted")
	}
}
